"""Analytic model zoo standing in for the paper's real training workloads.

The paper's experiments train five ML algorithms — AlexNet, ResNet, MLP,
LSTM and SVM (Section 4.1) — under data parallelism and model
parallelism.  The scheduler never inspects gradients; it only consumes

* per-layer parameter counts (model-partition sizes ``S_k``),
* per-iteration compute time,
* per-iteration loss reduction ``δl_I`` (the temporal ML feature), and
* communication volumes between workers.

This module provides those quantities analytically so the simulator can
drive every code path the paper exercises without a GPU testbed.  Layer
shapes follow the canonical architectures (e.g. AlexNet's 61M parameters
across 5 conv + 3 FC layers); per-iteration times are calibrated to
magnitudes reported for V100-class devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class PartitionStyle(Enum):
    """How a model may be split for model parallelism (Section 4.1).

    * ``SEQUENTIAL`` — "because of their sequential task dependency graph
      structures, we partitioned the model sequentially" (MLP, AlexNet).
    * ``LAYERED`` — "we partitioned each layer into several parts"
      (LSTM, ResNet): partitions run as parallel slices.
    * ``NONE`` — "SVM did not run in model parallelism because it is hard
      to partition its network model."
    """

    SEQUENTIAL = "sequential"
    LAYERED = "layered"
    NONE = "none"


@dataclass(frozen=True, slots=True)
class LayerSpec:
    """One layer of a model: a name and its parameter count (millions)."""

    name: str
    params_m: float


@dataclass(frozen=True)
class ModelProfile:
    """Static description of one trainable model.

    Attributes
    ----------
    name:
        Model identifier used in traces.
    layers:
        Ordered layer specifications; parameter counts drive partition
        sizes ``S_k`` in the priority formula (Eq. 2).
    partition_style:
        How model parallelism splits this model.
    base_iteration_seconds:
        Wall time of one full-model trace "iteration" (an epoch-scale unit
        of work) on a single unshared GPU; calibrated so job durations
        span minutes to hours like the Philly trace.
    batch_size_mb:
        Mini-batch size in MB (paper: 1 MB for AlexNet/ResNet, 1.5 KB
        for LSTM/MLP/SVM).
    loss_initial / loss_floor / loss_decay:
        Parameters of the per-iteration training-loss curve
        ``l(i) = floor + (initial - floor) * (1 + i)^(-decay)`` whose
        differences give the loss reductions ``δl_I``.
    comm_rounds_per_iteration:
        How many synchronization rounds one trace "iteration" performs
        (an epoch spans many mini-batches; the paper quotes 970–3168 MB
        of traffic *per mini-batch*).  Each round re-sends every link's
        volume, so per-iteration traffic = link volume × rounds.
    accuracy_ceiling:
        Best achievable accuracy for a typical job of this model;
        individual jobs jitter around it.
    curve_half_life:
        Iterations needed to reach half the accuracy ceiling in the
        saturating accuracy curve ``a(i) = ceiling * i / (i + half)``.
    """

    name: str
    layers: tuple[LayerSpec, ...]
    partition_style: PartitionStyle
    base_iteration_seconds: float
    batch_size_mb: float
    comm_rounds_per_iteration: int = 20
    loss_initial: float = 2.5
    loss_floor: float = 0.05
    loss_decay: float = 0.85
    accuracy_ceiling: float = 0.92
    curve_half_life: float = 8.0

    @property
    def total_params_m(self) -> float:
        """Total parameters in millions (``S_J`` in Eq. 2)."""
        return sum(layer.params_m for layer in self.layers)

    @property
    def num_layers(self) -> int:
        """Number of layers."""
        return len(self.layers)

    @property
    def model_state_mb(self) -> float:
        """Approximate serialized model size (fp32 parameters) in MB.

        Used to charge task-migration bandwidth: moving a worker moves
        its partition's parameter state.
        """
        return self.total_params_m * 4.0  # 1M fp32 params = 4 MB


def _alexnet() -> ModelProfile:
    layers = (
        LayerSpec("conv1", 0.035),
        LayerSpec("conv2", 0.615),
        LayerSpec("conv3", 0.885),
        LayerSpec("conv4", 1.327),
        LayerSpec("conv5", 0.885),
        LayerSpec("fc6", 37.75),
        LayerSpec("fc7", 16.78),
        LayerSpec("fc8", 4.10),
    )
    return ModelProfile(
        name="alexnet",
        layers=layers,
        partition_style=PartitionStyle.SEQUENTIAL,
        base_iteration_seconds=90.0,
        batch_size_mb=1.0,
        comm_rounds_per_iteration=40,
        loss_initial=3.2,
        loss_floor=0.35,
        loss_decay=0.8,
        accuracy_ceiling=0.86,
        curve_half_life=10.0,
    )


def _resnet() -> ModelProfile:
    blocks = [LayerSpec("conv1", 0.0095)]
    stage_params = {
        "stage1": (3, 0.073),
        "stage2": (4, 0.282),
        "stage3": (6, 1.118),
        "stage4": (3, 4.468),
    }
    for stage, (count, params) in stage_params.items():
        for i in range(count):
            blocks.append(LayerSpec(f"{stage}_block{i + 1}", params))
    blocks.append(LayerSpec("fc", 2.049))
    return ModelProfile(
        name="resnet",
        layers=tuple(blocks),
        partition_style=PartitionStyle.LAYERED,
        base_iteration_seconds=140.0,
        batch_size_mb=1.0,
        comm_rounds_per_iteration=30,
        loss_initial=4.2,
        loss_floor=0.25,
        loss_decay=0.9,
        accuracy_ceiling=0.94,
        curve_half_life=12.0,
    )


def _mlp() -> ModelProfile:
    layers = (
        LayerSpec("fc1", 2.36),
        LayerSpec("fc2", 4.19),
        LayerSpec("fc3", 2.10),
        LayerSpec("fc4", 0.52),
    )
    return ModelProfile(
        name="mlp",
        layers=layers,
        partition_style=PartitionStyle.SEQUENTIAL,
        base_iteration_seconds=25.0,
        batch_size_mb=0.0015,
        comm_rounds_per_iteration=25,
        loss_initial=2.3,
        loss_floor=0.12,
        loss_decay=1.0,
        accuracy_ceiling=0.97,
        curve_half_life=5.0,
    )


def _lstm() -> ModelProfile:
    layers = (
        LayerSpec("embed", 6.0),
        LayerSpec("lstm1", 4.2),
        LayerSpec("lstm2", 4.2),
        LayerSpec("proj", 1.3),
    )
    return ModelProfile(
        name="lstm",
        layers=layers,
        partition_style=PartitionStyle.LAYERED,
        base_iteration_seconds=60.0,
        batch_size_mb=0.0015,
        comm_rounds_per_iteration=30,
        loss_initial=5.8,
        loss_floor=1.1,
        loss_decay=0.7,
        accuracy_ceiling=0.89,
        curve_half_life=9.0,
    )


def _svm() -> ModelProfile:
    layers = (LayerSpec("weights", 0.3),)
    return ModelProfile(
        name="svm",
        layers=layers,
        partition_style=PartitionStyle.NONE,
        base_iteration_seconds=12.0,
        batch_size_mb=0.0015,
        comm_rounds_per_iteration=10,
        loss_initial=1.4,
        loss_floor=0.2,
        loss_decay=1.1,
        accuracy_ceiling=0.91,
        curve_half_life=4.0,
    )


#: The five workloads of Section 4.1, keyed by name.
MODEL_ZOO: dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (_alexnet(), _resnet(), _mlp(), _lstm(), _svm())
}

#: Deterministic ordering of model names for sampling.
MODEL_NAMES: tuple[str, ...] = tuple(sorted(MODEL_ZOO))


def get_model(name: str) -> ModelProfile:
    """Look up a model profile by name.

    Raises
    ------
    KeyError
        If the name is not one of the five supported workloads.
    """
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(MODEL_NAMES)}"
        ) from None
