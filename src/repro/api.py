"""repro.api — the supported public surface of the repro package.

One import site for everything a user of the toolkit needs::

    from repro import api

    spec = api.RunSpec(
        scheduler=api.SchedulerSpec("MLF-H"),
        workload=api.WorkloadSpec(num_jobs=120, duration_hours=2.0),
        cluster=api.ClusterSpec(num_servers=6),
    )
    record = api.run(spec)                       # one simulation
    grid = api.Grid(spec, axes={"seed": [0, 1, 2]})
    result = api.sweep(grid, workers=4)          # parallel sweep
    api.save_results(result, "sweep.json")

Everything re-exported here is the stable surface; reaching into
submodules (``repro.sim``, ``repro.core``, ...) still works but is an
implementation detail that may move between releases.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.core.config import MLFSConfig, PriorityWeights, RewardWeights
from repro.exp.grid import Grid
from repro.exp.io import load_results, save_results
from repro.exp.runner import (
    RunRecord,
    SweepProgress,
    SweepResult,
    SweepRunner,
    default_workers,
    execute_spec,
)
from repro.exp.spec import (
    ClusterSpec,
    GatewaySpec,
    PretrainSpec,
    RunSpec,
    SchedulerSpec,
    WorkloadSpec,
    replace_path,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan, load_plan, save_plan
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer
from repro.schedulers import SCHEDULER_FACTORIES, build_scheduler
from repro.sim.engine import EngineConfig, PassResult, SimulationEngine
from repro.sim.interface import Scheduler, SchedulerDecision, SchedulingContext
from repro.workload.generator import WorkloadConfig

__all__ = [
    "ClusterSpec",
    "EngineConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GatewaySpec",
    "Grid",
    "MLFSConfig",
    "PassResult",
    "PretrainSpec",
    "PriorityWeights",
    "RewardWeights",
    "RunRecord",
    "RunSpec",
    "SCHEDULER_FACTORIES",
    "Scheduler",
    "SchedulerDecision",
    "SchedulerSpec",
    "SchedulingContext",
    "SimulationEngine",
    "SweepProgress",
    "SweepResult",
    "SweepRunner",
    "WorkloadConfig",
    "WorkloadSpec",
    "build_scheduler",
    "default_workers",
    "load_plan",
    "load_results",
    "replace_path",
    "run",
    "save_plan",
    "save_results",
    "sweep",
]


def run(spec: RunSpec) -> RunRecord:
    """Execute one spec's simulation; returns its JSON-ready record."""
    return execute_spec(spec)


def sweep(
    grid: Union[Grid, Iterable[RunSpec]],
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    observer: Union[Observer, NullObserver] = NULL_OBSERVER,
    on_progress: Optional[Callable[[SweepProgress], None]] = None,
) -> SweepResult:
    """Execute a grid of specs, optionally in parallel and cached.

    ``workers=0`` runs serially in-process; ``workers=N`` uses a pool
    of N worker processes; ``None`` picks :func:`default_workers`.
    Serial and parallel sweeps of the same grid produce bit-identical
    merged results; see :mod:`repro.exp.runner` for the full contract.
    """
    with SweepRunner(
        workers=workers,
        cache_dir=cache_dir,
        observer=observer,
        on_progress=on_progress,
    ) as runner:
        return runner.run(grid)
