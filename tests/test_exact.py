"""Tests for the toy-scale epsilon-constraint reference solver."""

import pytest

from repro.cluster import Cluster
from repro.core.exact import (
    MAX_ASSIGNMENTS,
    enumerate_assignments,
    epsilon_constraint_solve,
    pareto_frontier,
    score_assignment,
)
from repro.core import MLFSConfig, PlacementEngine
from repro.sim.shadow import ShadowCluster
from tests.conftest import make_job


def toy_tasks(seed=90, gpus=2):
    job = make_job(seed=seed, gpus=gpus, model="alexnet")
    return [t for t in job.tasks if not t.is_parameter_server]


class TestEnumeration:
    def test_counts_feasible_assignments(self):
        cluster = Cluster.build(2, 2)
        tasks = toy_tasks()
        assignments = list(enumerate_assignments(tasks, cluster))
        assert 0 < len(assignments) <= 2 ** len(tasks)
        for assignment in assignments:
            assert set(assignment) == {t.task_id for t in tasks}
            assert all(v in (0, 1) for v in assignment.values())

    def test_rejects_huge_spaces(self):
        cluster = Cluster.build(10, 2)
        job = make_job(seed=91, gpus=32, model="resnet")
        with pytest.raises(ValueError):
            list(enumerate_assignments(job.tasks, cluster))

    def test_capacity_threshold_filters(self):
        cluster = Cluster.build(1, 1)
        job = make_job(seed=92, gpus=8, model="resnet")
        tasks = [t for t in job.tasks if not t.is_parameter_server][:6]
        # Six workers cannot all fit one single-GPU server at 100%.
        assignments = list(enumerate_assignments(tasks, cluster, 1.0))
        assert assignments == []


class TestScoring:
    def test_colocation_minimizes_cross_volume(self):
        cluster = Cluster.build(2, 4)
        tasks = toy_tasks()
        together = {t.task_id: 0 for t in tasks}
        apart = {t.task_id: i % 2 for i, t in enumerate(tasks)}
        s_together = score_assignment(tasks, together, cluster)
        s_apart = score_assignment(tasks, apart, cluster)
        assert s_together.cross_volume_mb <= s_apart.cross_volume_mb

    def test_spreading_minimizes_imbalance(self):
        cluster = Cluster.build(2, 4)
        tasks = toy_tasks()
        together = {t.task_id: 0 for t in tasks}
        apart = {t.task_id: i % 2 for i, t in enumerate(tasks)}
        assert (
            score_assignment(tasks, apart, cluster).imbalance
            <= score_assignment(tasks, together, cluster).imbalance
        )

    def test_pareto_frontier_nonempty_and_nondominated(self):
        cluster = Cluster.build(2, 2)
        tasks = toy_tasks()
        scored = [
            (a, score_assignment(tasks, a, cluster))
            for a in enumerate_assignments(tasks, cluster)
        ]
        frontier = pareto_frontier(scored)
        assert frontier
        for _a, score in frontier:
            for _b, other in frontier:
                if other == score:
                    continue
                assert not all(
                    o <= s for o, s in zip(other.as_tuple(), score.as_tuple())
                ) or not any(
                    o < s for o, s in zip(other.as_tuple(), score.as_tuple())
                )


class TestEpsilonConstraint:
    def test_returns_feasible_solution(self):
        cluster = Cluster.build(2, 2)
        tasks = toy_tasks()
        result = epsilon_constraint_solve(tasks, cluster)
        assert result is not None
        assignment, score = result
        assert set(assignment) == {t.task_id for t in tasks}
        assert score.imbalance >= 0.0

    def test_none_when_infeasible(self):
        cluster = Cluster.build(1, 1)
        job = make_job(seed=93, gpus=8, model="resnet")
        tasks = [t for t in job.tasks if not t.is_parameter_server][:6]
        assert epsilon_constraint_solve(tasks, cluster) is None

    def test_heuristic_close_to_exact_bandwidth(self):
        """MLF-H's RIAL placement lands near the exact frontier."""
        cluster = Cluster.build(2, 2)
        tasks = toy_tasks(seed=94)
        exact = epsilon_constraint_solve(tasks, cluster)
        assert exact is not None

        engine = PlacementEngine(config=MLFSConfig())
        shadow = ShadowCluster(cluster)
        heuristic: dict[str, int] = {}
        for task in tasks:
            choice = engine.select_host(task, shadow)
            assert choice is not None
            shadow.commit_placement(task, choice.server_id, choice.gpu_id)
            heuristic[task.task_id] = choice.server_id
        h_score = score_assignment(tasks, heuristic, cluster)
        scored = [
            (a, score_assignment(tasks, a, cluster))
            for a in enumerate_assignments(tasks, cluster)
        ]
        worst = max(s.cross_volume_mb for _a, s in scored)
        best = min(s.cross_volume_mb for _a, s in scored)
        # The heuristic's bandwidth sits in the better half of the space.
        assert h_score.cross_volume_mb <= best + (worst - best) * 0.5 + 1e-9

    def test_max_assignments_constant_sane(self):
        assert MAX_ASSIGNMENTS >= 1_000_000
