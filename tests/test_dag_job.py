"""Unit tests for task-graph construction and the Job/Task model."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    CommStructure,
    TaskState,
    build_task_graph,
    critical_path_seconds,
    dependents_count,
)
from repro.workload.dag import _jitter_demand
from repro.cluster import ResourceVector
from tests.conftest import make_job, make_record
from repro.workload.generator import WorkloadConfig, build_job


def job_with_structure(structure, seed=0, **kwargs):
    """Build a job then force a given communication structure."""
    for s in range(seed, seed + 200):
        job = make_job(seed=s, **kwargs)
        if job.comm_structure is structure:
            return job
    raise AssertionError(f"could not draw structure {structure}")


class TestTaskGraph:
    def test_dag_is_acyclic(self, simple_job):
        assert nx.is_directed_acyclic_graph(simple_job.dag)

    def test_task_count_matches_grid(self, simple_job):
        expected = simple_job.num_replicas * simple_job.num_partitions
        workers = [t for t in simple_job.tasks if not t.is_parameter_server]
        assert len(workers) == expected

    def test_ps_task_exists_under_ps_structure(self):
        job = job_with_structure(CommStructure.PARAMETER_SERVER)
        ps = [t for t in job.tasks if t.is_parameter_server]
        assert len(ps) == 1
        # PS is a sink: no outgoing dependency edges.
        assert job.dag.out_degree(ps[0].task_id) == 0
        assert job.dag.in_degree(ps[0].task_id) >= 1

    def test_ring_allreduce_has_sync_links_no_ps(self):
        job = job_with_structure(CommStructure.RING_ALLREDUCE, gpus=8)
        assert not any(t.is_parameter_server for t in job.tasks)
        assert job.sync_links
        # A ring over n reducers has exactly n links per final partition.
        srcs = [s for s, _d, _v in job.sync_links]
        assert len(srcs) == len(set(srcs))  # each reducer sends once per ring

    def test_torus_allreduce_links(self):
        job = job_with_structure(CommStructure.TORUS_ALLREDUCE, gpus=16)
        assert job.sync_links
        for src, dst, volume in job.sync_links:
            assert src != dst
            assert 50.0 <= volume <= 100.0

    def test_edge_volumes_in_paper_range(self, simple_job):
        for *_edge, data in simple_job.dag.edges(data=True):
            assert 50.0 <= data["volume_mb"] <= 100.0

    def test_rebuild_raises(self, simple_job):
        with pytest.raises(ValueError):
            build_task_graph(simple_job, random.Random(0))

    def test_sequential_model_forms_chains(self):
        record = make_record(model="alexnet", gpus=4)
        job = build_job(record, random.Random(13), WorkloadConfig())
        workers = [t for t in job.tasks if not t.is_parameter_server]
        per_replica = {}
        for t in workers:
            per_replica.setdefault(t.replica_index, []).append(t)
        for tasks in per_replica.values():
            # partitions chain: p0 -> p1 -> ...
            ids = {t.partition_index: t.task_id for t in tasks}
            for p in range(1, len(ids)):
                assert job.dag.has_edge(ids[p - 1], ids[p])

    def test_dependents_count(self, simple_job):
        for task in simple_job.tasks:
            count = dependents_count(simple_job.dag, task.task_id)
            assert count >= 0

    def test_critical_path_positive(self, simple_job):
        assert critical_path_seconds(simple_job) > 0.0

    def test_critical_path_empty_job(self):
        job = make_job(seed=5)
        job.tasks = []
        assert critical_path_seconds(job) == 0.0

    def test_gpu_demand_capped(self, small_workload):
        for job in small_workload:
            for task in job.tasks:
                assert task.demand.gpu <= 0.85 + 1e-9
                assert task.true_demand.gpu <= 0.88 + 1e-9

    def test_jitter_demand_bounds(self):
        rng = random.Random(0)
        base = ResourceVector(gpu=0.8, cpu=2.0, mem=4.0, bw=50.0)
        for _ in range(200):
            actual = _jitter_demand(base, rng)
            assert actual.gpu <= 0.88
            assert 0.85 * base.cpu <= actual.cpu <= 1.4 * base.cpu


class TestTaskLifecycle:
    def test_initial_state_queued(self, simple_job):
        assert all(t.state is TaskState.QUEUED for t in simple_job.tasks)

    def test_mark_placed_tracks_wait(self, simple_job):
        task = simple_job.tasks[0]
        task.mark_queued(100.0)
        task.mark_placed(160.0, server_id=2, gpu_id=1)
        assert task.state is TaskState.RUNNING
        assert task.server_id == 2 and task.gpu_id == 1
        assert task.total_queue_wait == pytest.approx(60.0)
        assert task.is_placed

    def test_waiting_time_accumulates_stints(self, simple_job):
        task = simple_job.tasks[0]
        task.mark_queued(0.0)
        task.mark_placed(50.0, 0, 0)
        task.mark_queued(80.0)
        assert task.waiting_time(100.0) == pytest.approx(50.0 + 20.0)

    def test_mark_finished_clears_placement(self, simple_job):
        task = simple_job.tasks[0]
        task.mark_placed(0.0, 0, 0)
        task.mark_finished()
        assert task.state is TaskState.FINISHED
        assert task.server_id is None and not task.is_placed


class TestJobModel:
    def test_hash_and_eq_by_id(self):
        a = make_job(seed=1, job_id="same")
        b = make_job(seed=2, job_id="same")
        assert a == b and hash(a) == hash(b)

    def test_gpus_requested(self, simple_job):
        assert (
            simple_job.gpus_requested
            == simple_job.num_replicas * simple_job.num_partitions
        )

    def test_loss_monotone_and_delta_positive(self, simple_job):
        for i in range(1, 30):
            assert simple_job.loss_at(i) < simple_job.loss_at(i - 1)
            assert simple_job.delta_loss(i) > 0

    def test_delta_loss_iteration_zero(self, simple_job):
        assert simple_job.delta_loss(0) == 0.0

    def test_cumulative_delta_loss_telescopes(self, simple_job):
        total = sum(simple_job.delta_loss(i) for i in range(1, 11))
        assert simple_job.cumulative_delta_loss(10) == pytest.approx(total)

    def test_accuracy_monotone_saturating(self, simple_job):
        values = [simple_job.accuracy_at(i) for i in range(0, 100)]
        assert values[0] == 0.0
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] < simple_job.accuracy_ceiling

    def test_iterations_for_accuracy_inverse(self, simple_job):
        target = simple_job.accuracy_at(simple_job.max_iterations) * 0.9
        needed = simple_job.iterations_for_accuracy(target)
        assert needed is not None
        assert simple_job.accuracy_at(needed) >= target
        assert simple_job.accuracy_at(needed - 1) < target

    def test_iterations_for_accuracy_unreachable(self, simple_job):
        assert simple_job.iterations_for_accuracy(simple_job.accuracy_ceiling) is None

    def test_fully_placed_and_queues(self, simple_job):
        assert not simple_job.is_fully_placed
        for task in simple_job.tasks:
            task.mark_placed(0.0, 0, 0)
        assert simple_job.is_fully_placed
        assert simple_job.queued_tasks() == []
        assert len(simple_job.placed_tasks()) == len(simple_job.tasks)

    def test_jct_and_deadline(self, simple_job):
        assert simple_job.jct() is None
        simple_job.completion_time = simple_job.arrival_time + 100.0
        assert simple_job.jct() == pytest.approx(100.0)
        simple_job.deadline = simple_job.completion_time + 1.0
        assert simple_job.met_deadline()

    def test_met_accuracy_uses_deadline_accuracy(self, simple_job):
        simple_job.accuracy_requirement = 0.5
        simple_job.accuracy_at_deadline = 0.4
        assert not simple_job.met_accuracy()
        simple_job.accuracy_at_deadline = 0.6
        assert simple_job.met_accuracy()

    def test_task_by_id(self, simple_job):
        task = simple_job.tasks[0]
        assert simple_job.task_by_id(task.task_id) is task
        with pytest.raises(KeyError):
            simple_job.task_by_id("missing")

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_accuracy_bounded(self, iterations):
        job = make_job(seed=9)
        assert 0.0 <= job.accuracy_at(iterations) <= job.accuracy_ceiling
