"""Unit tests for MLFSConfig validation and the scheduler interface."""

import pytest

from repro.core import DEFAULT_CONFIG, MLFSConfig, PriorityWeights, RewardWeights
from repro.cluster import Cluster
from repro.learncurve import AccuracyPredictor, RuntimePredictor
from repro.sim import (
    EngineConfig,
    SchedulerDecision,
    SchedulingContext,
    SimulationSetup,
    run_simulation,
)
from repro.sim.interface import Placement
from repro.workload import generate_trace
from tests.conftest import make_job


class TestPriorityWeights:
    def test_paper_defaults(self):
        w = PriorityWeights()
        assert (w.alpha, w.gamma) == (0.3, 0.8)
        assert (w.gamma_d, w.gamma_r, w.gamma_w) == (0.3, 0.3, 0.35)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -0.1},
            {"alpha": 1.1},
            {"gamma": 0.0},
            {"gamma": 1.0},
            {"gamma_d": -1.0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            PriorityWeights(**kwargs).validate()


class TestRewardWeights:
    def test_paper_defaults(self):
        assert RewardWeights().as_tuple() == (0.5, 0.55, 0.25, 0.15, 0.15)

    def test_deadline_weight_largest(self):
        w = RewardWeights()
        assert w.beta_deadline == max(w.as_tuple())


class TestMLFSConfig:
    def test_default_validates(self):
        DEFAULT_CONFIG.validate()

    def test_paper_thresholds(self):
        cfg = MLFSConfig()
        assert cfg.overload_threshold == 0.90
        assert cfg.system_overload_threshold == 0.90
        assert cfg.migration_candidate_fraction == 0.10
        assert cfg.eta == 0.95

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eta": 0.0},
            {"eta": 1.5},
            {"overload_threshold": 0.0},
            {"overload_threshold": 1.5},
            {"migration_candidate_fraction": 0.0},
            {"urgency_levels": 0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            MLFSConfig(**kwargs).validate()

    def test_ablation_flags_default_on(self):
        cfg = MLFSConfig()
        assert cfg.use_ml_features and cfg.use_urgency
        assert cfg.use_deadline and cfg.use_bandwidth
        assert cfg.enable_migration and cfg.enable_load_control


class TestSchedulerDecision:
    def test_empty(self):
        assert SchedulerDecision().is_empty()

    def test_nonempty(self):
        job = make_job(seed=1)
        decision = SchedulerDecision(placements=[Placement(job.tasks[0], 0, 0)])
        assert not decision.is_empty()


class TestSchedulingContext:
    def make(self, jobs, cluster, queue=None):
        return SchedulingContext(
            now=0.0,
            cluster=cluster,
            queue=queue or [],
            active_jobs=jobs,
            overload_threshold=0.9,
            system_overload_threshold=0.9,
            accuracy_predictor=AccuracyPredictor(),
            runtime_predictor=RuntimePredictor(),
        )

    def test_running_jobs_filters_placed(self):
        cluster = Cluster.build(2, 4)
        job = make_job(seed=2)
        ctx = self.make([job], cluster)
        assert ctx.running_jobs() == []
        job.tasks[0].mark_placed(0.0, 0, 0)
        assert ctx.running_jobs() == [job]

    def test_system_overloaded_via_queue(self):
        cluster = Cluster.build(2, 4)
        job = make_job(seed=2)
        ctx = self.make([job], cluster, queue=[job.tasks[0]])
        assert ctx.system_overloaded()
        ctx2 = self.make([job], cluster, queue=[])
        assert not ctx2.system_overloaded()


class TestSimulationSetup:
    def test_fresh_jobs_per_run(self):
        records = generate_trace(5, duration_seconds=600.0, seed=80)
        setup = SimulationSetup(
            records=records,
            cluster_factory=lambda: Cluster.build(4, 4),
            workload_seed=81,
            engine_config=EngineConfig(),
        )
        from repro.baselines import FIFOScheduler

        first = run_simulation(FIFOScheduler(), setup)
        second = run_simulation(FIFOScheduler(), setup)
        # Stateful Job objects must not leak between runs: identical
        # outcomes prove each run rebuilt its own workload.
        assert [r.jct for r in first.metrics.job_records] == [
            r.jct for r in second.metrics.job_records
        ]

    def test_engine_config_override(self):
        records = generate_trace(3, duration_seconds=600.0, seed=82)
        setup = SimulationSetup(
            records=records,
            cluster_factory=lambda: Cluster.build(4, 4),
            workload_seed=83,
        )
        from repro.baselines import FIFOScheduler

        result = run_simulation(
            FIFOScheduler(), setup, engine_config=EngineConfig(max_time=60.0)
        )
        # The 60-second cap truncates everything.
        assert all(
            r.completion_time <= 60.0 + 1e-6 for r in result.metrics.job_records
        )


class TestEngineConfig:
    def test_paper_defaults(self):
        cfg = EngineConfig()
        assert cfg.tick_seconds == 60.0
        assert cfg.overload_threshold == 0.90
        assert cfg.system_overload_threshold == 0.90
