"""Cross-policy fixed≡event equivalence harness (the PR-10 correctness spine).

Every scheduler in the registry — parkable or not — must produce
bit-identical telemetry under ``pass_policy="event"`` and the fixed
60-second cadence, across three workload shapes:

* ``sparse``  — a handful of jobs spread over hours: long quiet gaps
  where parking pays (and where analytic accrual must be exact);
* ``bursty``  — arrivals clustered inside ten minutes: constant queue
  pressure, parking rarely engages;
* ``faulted`` — sparse plus an armed :class:`FaultPlan`: pending fault
  rounds must unpark the pass timer on schedule.

For the five parkable policies the harness additionally proves that a
mid-run snapshot taken *at a parked gap* restores and resumes to the
exact fixed-cadence outcome, and that parking genuinely engages on the
sparse shape (fewer passes executed) — without that check the identity
assertions would pass vacuously.

Also here: the regression test for the hoisted ``event_parkable`` read
(flipping the flag mid-run must change nothing — the engine reads it
once at construction), and unit tests for the integer
:class:`~repro.sim.clock.PassClock` that backs Gandiva's slice rotation
and SLAQ's epoch (``advance(n)`` must equal n explicit ticks).
"""

from __future__ import annotations

import pickle

import pytest

from repro.cluster import Cluster
from repro.faults import FaultEvent, FaultPlan
from repro.schedulers import SCHEDULER_FACTORIES, build_scheduler
from repro.sim import EngineConfig, SimulationEngine
from repro.sim.clock import PassClock
from repro.workload import build_jobs, generate_trace

WEEK = 7 * 24 * 3600.0

ALL_POLICIES = sorted(SCHEDULER_FACTORIES)
PARKABLE = sorted(
    name
    for name in SCHEDULER_FACTORIES
    if getattr(build_scheduler(name), "event_parkable", False)
)

FAULT_PLAN = FaultPlan(
    events=(
        FaultEvent(round_index=2, kind="server_crash", server_id=1),
        FaultEvent(round_index=8, kind="server_revive", server_id=1),
        FaultEvent(round_index=4, kind="gpu_fail", server_id=0, gpu_id=1),
        FaultEvent(round_index=10, kind="gpu_revive", server_id=0, gpu_id=1),
    ),
)

#: Workload shape -> (num_jobs, trace duration, trace seed, fault plan).
WORKLOADS = {
    "sparse": (6, 4 * 3600.0, 101, None),
    "bursty": (10, 600.0, 102, None),
    "faulted": (6, 4 * 3600.0, 103, FAULT_PLAN),
}


def build(policy_name, workload, pass_policy):
    num_jobs, duration, seed, faults = WORKLOADS[workload]
    records = generate_trace(num_jobs, duration_seconds=duration, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(4, 4)
    config = EngineConfig(max_time=WEEK, seed=seed + 2, pass_policy=pass_policy)
    kwargs = {"faults": faults} if faults is not None else {}
    return SimulationEngine(
        build_scheduler(policy_name), jobs, cluster, config, **kwargs
    )


def signature(metrics):
    """The telemetry that must be bit-identical across pass policies.

    Per-job outcomes plus every cumulative counter.  Float fields are
    compared exactly — analytic accrual promises *bit* identity, not
    tolerance-identity.
    """
    jobs = sorted(
        (r.job_id, r.jct, r.completion_time, r.iterations_completed, r.final_accuracy)
        for r in metrics.job_records
    )
    return (
        jobs,
        metrics.num_evictions,
        metrics.num_migrations,
        metrics.bandwidth_mb,
        metrics.migration_bandwidth_mb,
        metrics.overload_occurrences,
        metrics.tasks_killed,
        metrics.iterations_lost,
        metrics.first_arrival,
        metrics.last_completion,
    )


def drain(engine):
    """Advance an already-started engine to completion."""
    while True:
        result = engine.advance()
        if result.drained or result.events_processed == 0:
            break
    return engine.finalize()


# ---------------------------------------------------------------------------
# The spine: every policy x every workload, fixed == event
# ---------------------------------------------------------------------------


class TestCrossPolicyEquivalence:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_fixed_and_event_telemetry_bit_identical(self, policy, workload):
        fixed = build(policy, workload, "fixed")
        event = build(policy, workload, "event")
        assert signature(fixed.run()) == signature(event.run())
        # Event mode may skip passes, never add them.
        assert event.pass_index <= fixed.pass_index

    @pytest.mark.parametrize("policy", PARKABLE)
    def test_parking_engages_on_sparse_workload(self, policy):
        """Guards the spine against vacuity: on the sparse shape each
        parkable policy must actually skip passes, not merely match."""
        fixed = build(policy, "sparse", "fixed")
        event = build(policy, "sparse", "event")
        fixed.run()
        event.run()
        assert event.pass_index < fixed.pass_index

    def test_all_five_baseline_policies_are_parkable(self):
        """The ISSUE's acceptance bar: MLF-H, MLF-RL, Tiresias, Gandiva
        and SLAQ all declare ``event_parkable``."""
        assert {"MLF-H", "MLF-RL", "Tiresias", "Gandiva", "SLAQ"} <= set(PARKABLE)


# ---------------------------------------------------------------------------
# Snapshot/restore taken at a parked gap
# ---------------------------------------------------------------------------


class TestSnapshotAtParkedGap:
    @pytest.mark.parametrize("policy", PARKABLE)
    def test_restore_from_parked_snapshot_is_bit_identical(self, policy):
        expected = signature(build(policy, "sparse", "fixed").run())

        engine = build(policy, "sparse", "event")
        engine.start()
        parked_once = False
        while True:
            result = engine.advance()
            if engine.parked:
                parked_once = True
                break
            if result.drained or result.events_processed == 0:
                break
        # The cut must land inside a genuine parked gap, else this test
        # proves nothing for the accrual path.
        assert parked_once, f"{policy} never parked on the sparse workload"

        restored = pickle.loads(pickle.dumps(engine))
        assert restored.parked
        assert signature(drain(restored)) == expected


# ---------------------------------------------------------------------------
# event_parkable is read once, at engine construction
# ---------------------------------------------------------------------------


class TestParkableFlagHoisting:
    def test_disabling_flag_mid_run_changes_nothing(self):
        baseline = build("MLF-H", "sparse", "event")
        expected = signature(baseline.run())
        expected_passes = baseline.pass_index

        engine = build("MLF-H", "sparse", "event")
        engine.start()
        for _ in range(3):
            engine.advance()
        # Too late: the engine pinned parkability (and the accrue/veto
        # hooks) at construction.
        engine.scheduler.event_parkable = False
        assert signature(drain(engine)) == expected
        assert engine.pass_index == expected_passes

    def test_enabling_flag_mid_run_changes_nothing(self):
        baseline = build("FIFO", "sparse", "event")
        expected = signature(baseline.run())
        expected_passes = baseline.pass_index

        engine = build("FIFO", "sparse", "event")
        engine.start()
        for _ in range(3):
            engine.advance()
        engine.scheduler.event_parkable = True
        assert signature(drain(engine)) == expected
        # Still never parks: pass count matches the untouched run.
        assert engine.pass_index == expected_passes


# ---------------------------------------------------------------------------
# PassClock: advance(n) is the closed form of n ticks
# ---------------------------------------------------------------------------


class TestPassClock:
    def test_fires_every_nth_tick(self):
        clock = PassClock(period_passes=3)
        fires = [clock.tick() for _ in range(9)]
        assert fires == [False, False, True] * 3

    def test_period_one_fires_every_tick(self):
        clock = PassClock(period_passes=1)
        assert [clock.tick() for _ in range(4)] == [True] * 4

    @pytest.mark.parametrize("period", [1, 2, 3, 5, 7])
    @pytest.mark.parametrize("skipped", [0, 1, 2, 4, 9, 23])
    def test_advance_equals_explicit_ticks(self, period, skipped):
        """advance(n) after any prefix leaves the same state as n
        tick() calls — the bit-identity obligation of accrue()."""
        for prefix in range(period):
            ticked = PassClock(period_passes=period)
            jumped = PassClock(period_passes=period)
            for _ in range(prefix):
                ticked.tick()
                jumped.tick()
            for _ in range(skipped):
                ticked.tick()
            jumped.advance(skipped)
            assert ticked.passes_since_fire == jumped.passes_since_fire
            # Next real tick agrees on both fire decision and state.
            assert ticked.tick() == jumped.tick()
            assert ticked.passes_since_fire == jumped.passes_since_fire

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            PassClock(period_passes=0)
