"""Unit tests for RIAL placement and migration-task selection."""

import pytest

from repro.cluster import Cluster, ResourceVector
from repro.core import MLFSConfig, MigrationSelector, PlacementEngine, TaskCommIndex
from repro.core.priority import PriorityCalculator
from repro.sim.shadow import ShadowCluster
from tests.conftest import make_job


def fill_server(cluster, server_id, seeds):
    """Place whole jobs on one server; returns the placed jobs."""
    jobs = []
    for seed in seeds:
        job = make_job(seed=seed, job_id=f"fill{server_id}_{seed}")
        for task in job.tasks:
            gpu = cluster.server(server_id).place_task(task)
            task.mark_placed(0.0, server_id, gpu.gpu_id)
        jobs.append(job)
    return jobs


class TestPlacementEngine:
    def test_selects_some_underloaded_server(self, small_cluster):
        engine = PlacementEngine(config=MLFSConfig())
        shadow = ShadowCluster(small_cluster)
        task = make_job(seed=1).tasks[0]
        choice = engine.select_host(task, shadow)
        assert choice is not None
        assert 0 <= choice.server_id < 4

    def test_no_candidates_returns_none(self):
        cluster = Cluster.build(1, 1)
        engine = PlacementEngine(config=MLFSConfig())
        shadow = ShadowCluster(cluster)
        # Saturate the only GPU.
        shadow._add(0, 0, ResourceVector(gpu=0.89, cpu=0, mem=0, bw=0))
        task = make_job(seed=2).tasks[0]
        assert engine.select_host(task, shadow) is None

    def test_prefers_less_loaded_server(self, small_cluster):
        fill_server(small_cluster, 0, seeds=[3, 4])
        engine = PlacementEngine(
            config=MLFSConfig(use_bandwidth=False)
        )
        shadow = ShadowCluster(small_cluster)
        task = make_job(seed=5).tasks[0]
        choice = engine.select_host(task, shadow)
        assert choice is not None
        assert choice.server_id != 0

    def test_bandwidth_pulls_task_to_peers(self, small_cluster):
        # Place all of a job's tasks but one on server 2; with the BW
        # term on, the last task should co-locate despite the load.
        job = make_job(seed=6, gpus=4)
        tasks = job.tasks
        for task in tasks[:-1]:
            gpu = small_cluster.server(2).place_task(task)
            task.mark_placed(0.0, 2, gpu.gpu_id)
        engine = PlacementEngine(config=MLFSConfig(use_bandwidth=True))
        shadow = ShadowCluster(small_cluster)
        choice = engine.select_host(tasks[-1], shadow)
        assert choice is not None and choice.server_id == 2

    def test_bandwidth_ablation_changes_behaviour(self, small_cluster):
        job = make_job(seed=6, gpus=4)
        for task in job.tasks[:-1]:
            gpu = small_cluster.server(2).place_task(task)
            task.mark_placed(0.0, 2, gpu.gpu_id)
        engine = PlacementEngine(config=MLFSConfig(use_bandwidth=False))
        shadow = ShadowCluster(small_cluster)
        choice = engine.select_host(job.tasks[-1], shadow)
        # Without the BW term the loaded server 2 is no longer closest
        # to the ideal (its utilizations exceed the min).
        assert choice is not None and choice.server_id != 2

    def test_gpu_is_least_loaded(self, small_cluster):
        engine = PlacementEngine(config=MLFSConfig())
        shadow = ShadowCluster(small_cluster)
        shadow._add(0, 0, ResourceVector(gpu=0.5, cpu=0, mem=0, bw=0))
        task = make_job(seed=7).tasks[0]
        choice = engine.select_host(task, shadow)
        if choice is not None and choice.server_id == 0:
            assert choice.gpu_id != 0


class TestTaskCommIndex:
    def test_volume_to_server(self, small_cluster):
        index = TaskCommIndex()
        job = make_job(seed=8, gpus=4)
        shadow = ShadowCluster(small_cluster)
        for task in job.tasks[1:]:
            gpu = small_cluster.server(1).place_task(task)
            task.mark_placed(0.0, 1, gpu.gpu_id)
        volume_peer = index.volume_to_server(job.tasks[0], 1, shadow)
        volume_empty = index.volume_to_server(job.tasks[0], 3, shadow)
        assert volume_peer >= volume_empty
        assert volume_empty == 0.0

    def test_forget(self, small_cluster):
        index = TaskCommIndex()
        job = make_job(seed=8)
        shadow = ShadowCluster(small_cluster)
        index.volume_to_server(job.tasks[0], 0, shadow)
        assert job.job_id in index._indexed_jobs
        index.forget(job)
        assert job.job_id not in index._indexed_jobs


class TestMigrationSelector:
    def overload_one_server(self):
        cluster = Cluster.build(2, 4)
        jobs = fill_server(cluster, 0, seeds=[11, 12, 13, 14])
        return cluster, jobs

    def test_selects_until_not_overloaded(self):
        cluster, jobs = self.overload_one_server()
        server = cluster.server(0)
        config = MLFSConfig()
        if not server.is_overloaded(config.overload_threshold):
            pytest.skip("workload draw did not overload the server")
        selector = MigrationSelector(config=config)
        shadow = ShadowCluster(cluster)
        calc = PriorityCalculator(config=config)
        priorities = calc.priorities(jobs, now=0.0)
        selected = selector.select(server, shadow, priorities)
        assert selected
        assert not shadow.is_overloaded(server, config.overload_threshold)
        # Selected tasks are committed as removals in the shadow.
        assert all(shadow.task_location(t) is None for t in selected)

    def test_respects_max_tasks(self):
        cluster, jobs = self.overload_one_server()
        server = cluster.server(0)
        config = MLFSConfig()
        if not server.is_overloaded(config.overload_threshold):
            pytest.skip("workload draw did not overload the server")
        selector = MigrationSelector(config=config)
        shadow = ShadowCluster(cluster)
        calc = PriorityCalculator(config=config)
        priorities = calc.priorities(jobs, now=0.0)
        selected = selector.select(server, shadow, priorities, max_tasks=1)
        assert len(selected) == 1

    def test_ps_rule_protects_high_priority(self):
        cluster, jobs = self.overload_one_server()
        server = cluster.server(0)
        config = MLFSConfig(migration_candidate_fraction=0.3)
        if not server.overloaded_gpus(config.overload_threshold):
            pytest.skip("no overloaded GPU in this draw")
        selector = MigrationSelector(config=config)
        shadow = ShadowCluster(cluster)
        calc = PriorityCalculator(config=config)
        priorities = calc.priorities(jobs, now=0.0)
        selected = selector.select(server, shadow, priorities, max_tasks=2)
        if selected:
            # Selected tasks come from the bottom of the priority order
            # among the hot GPUs' tasks.
            hot = {
                t.task_id
                for g in server.overloaded_gpus(config.overload_threshold)
                for t in g.tasks()
            }
            first = selected[0]
            if first.task_id in hot:
                hot_priorities = sorted(
                    priorities[tid] for tid in hot if tid in priorities
                )
                assert priorities[first.task_id] <= hot_priorities[
                    max(0, int(len(hot_priorities) * 0.5))
                ]

    def test_not_overloaded_selects_nothing(self, small_cluster):
        config = MLFSConfig()
        selector = MigrationSelector(config=config)
        shadow = ShadowCluster(small_cluster)
        selected = selector.select(small_cluster.server(0), shadow, {})
        assert selected == []
