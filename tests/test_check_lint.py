"""Unit tests for the repo-specific AST lint (``repro.check.lint``).

Each rule gets a positive case (the violation is reported) and a
suppressed case (the same code with an inline
``# repro-lint: disable=...`` escape hatch passes).  The seeded fixture
``tests/fixtures/lint_violations.py`` pins the full catalogue: linting
it must yield exactly one finding per rule.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.check.lint import (
    FULL_SCOPE,
    SCRIPT_SCOPE,
    FileScope,
    RULES,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    scope_for_path,
)

FIXTURE = Path(__file__).parent / "fixtures" / "lint_violations.py"
SRC = Path(__file__).parent.parent / "src"

LIBRARY_ONLY = FileScope(clocked=False, library=True)


def rule_ids(source: str, scope: FileScope = FULL_SCOPE) -> list[str]:
    return [v.rule_id for v in lint_source(source, scope=scope)]


class TestRep001WallClock:
    def test_time_time(self):
        assert rule_ids("import time\nt = time.time()\n") == ["REP001"]

    def test_time_time_ns_aliased(self):
        assert rule_ids("import time as _t\nt = _t.time_ns()\n") == ["REP001"]

    def test_from_import(self):
        assert rule_ids("from time import time\nt = time()\n") == ["REP001"]

    def test_datetime_now(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert rule_ids(src) == ["REP001"]

    def test_datetime_module_utcnow(self):
        src = "import datetime\nd = datetime.datetime.utcnow()\n"
        assert rule_ids(src) == ["REP001"]

    def test_monotonic_allowed(self):
        # Only wall-clock reads are rejected; perf counters are fine.
        assert rule_ids("import time\nt = time.perf_counter()\n") == []

    def test_not_clocked_scope(self):
        src = "import time\nt = time.time()\n"
        assert rule_ids(src, scope=LIBRARY_ONLY) == []

    def test_suppressed(self):
        src = "import time\nt = time.time()  # repro-lint: disable=REP001\n"
        assert rule_ids(src) == []


class TestRep002GlobalRng:
    def test_random_module(self):
        assert rule_ids("import random\nx = random.choice([1, 2])\n") == ["REP002"]

    def test_from_import(self):
        assert rule_ids("from random import randint\nx = randint(0, 9)\n") == [
            "REP002"
        ]

    def test_numpy_global(self):
        assert rule_ids("import numpy as np\nx = np.random.rand(3)\n") == ["REP002"]

    def test_injected_rng_allowed(self):
        src = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert rule_ids(src) == []

    def test_not_clocked_scope(self):
        src = "import random\nx = random.random()\n"
        assert rule_ids(src, scope=LIBRARY_ONLY) == []

    def test_suppressed(self):
        src = "import random\nrandom.seed(1)  # repro-lint: disable=REP002\n"
        assert rule_ids(src) == []


class TestRep003MutableDefault:
    def test_list_literal(self):
        assert rule_ids("def f(x=[]):\n    return x\n") == ["REP003"]

    def test_dict_call(self):
        assert rule_ids("def f(x=dict()):\n    return x\n") == ["REP003"]

    def test_kwonly_default(self):
        assert rule_ids("def f(*, x={}):\n    return x\n") == ["REP003"]

    def test_none_default_allowed(self):
        assert rule_ids("def f(x=None):\n    return x\n") == []

    def test_tuple_default_allowed(self):
        assert rule_ids("def f(x=()):\n    return x\n") == []

    def test_suppressed(self):
        src = "def f(x=[]):  # repro-lint: disable=REP003\n    return x\n"
        assert rule_ids(src) == []


class TestRep004BareExcept:
    def test_bare(self):
        src = "try:\n    pass\nexcept:\n    pass\n"
        assert rule_ids(src) == ["REP004"]

    def test_typed_allowed(self):
        src = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert rule_ids(src) == []

    def test_suppressed(self):
        src = "try:\n    pass\nexcept:  # repro-lint: disable=REP004\n    pass\n"
        assert rule_ids(src) == []


class TestRep005FloatPriorityEq:
    def test_score_names(self):
        src = "def f(score, other_score):\n    return score == other_score\n"
        assert rule_ids(src) == ["REP005"]

    def test_priority_attribute(self):
        src = "def f(task, x):\n    return task.priority != x\n"
        assert rule_ids(src) == ["REP005"]

    def test_int_wrapped_allowed(self):
        src = "def f(scores, k):\n    return int(scores[0]) == k\n"
        assert rule_ids(src) == []

    def test_string_guard_allowed(self):
        src = "def f(score_kind):\n    return score_kind == 'exact'\n"
        assert rule_ids(src) == []

    def test_non_score_names_allowed(self):
        assert rule_ids("def f(a, b):\n    return a == b\n") == []

    def test_suppressed(self):
        src = (
            "def f(score, other_score):\n"
            "    return score == other_score  # repro-lint: disable=REP005\n"
        )
        assert rule_ids(src) == []


class TestRep006PrintInLibrary:
    def test_print(self):
        assert rule_ids("print('hello')\n") == ["REP006"]

    def test_entrypoint_exempt(self):
        scope = scope_for_path(SRC / "repro" / "cli.py")
        assert rule_ids("print('usage: ...')\n", scope=scope) == []

    def test_suppressed(self):
        assert rule_ids("print('x')  # repro-lint: disable=REP006\n") == []

    def test_disable_all(self):
        assert rule_ids("print('x')  # repro-lint: disable=all\n") == []


class TestRep007NondeterministicId:
    def test_uuid4(self):
        assert rule_ids("import uuid\nx = uuid.uuid4()\n") == ["REP007"]

    def test_from_import(self):
        assert rule_ids("from uuid import uuid4\nx = uuid4()\n") == ["REP007"]

    def test_secrets(self):
        assert rule_ids("import secrets\nx = secrets.token_hex(8)\n") == [
            "REP007"
        ]

    def test_os_urandom(self):
        assert rule_ids("import os\nx = os.urandom(8)\n") == ["REP007"]

    def test_untraced_scope_allowed(self):
        src = "import uuid\nx = uuid.uuid4()\n"
        assert rule_ids(src, scope=LIBRARY_ONLY) == []

    def test_deterministic_uuid5_still_flagged(self):
        # uuid5 is content-addressed but namespace-dependent; the repo
        # standard is repro.obs.tracectx, so it is rejected too.
        src = "import uuid\nx = uuid.uuid5(uuid.NAMESPACE_DNS, 'a')\n"
        assert rule_ids(src) == ["REP007"]

    def test_os_path_allowed(self):
        assert rule_ids("import os\nx = os.path.exists('/tmp')\n") == []

    def test_suppressed(self):
        src = "import uuid\nx = uuid.uuid4()  # repro-lint: disable=REP007\n"
        assert rule_ids(src) == []


class TestScoping:
    def test_sim_package_is_clocked(self):
        scope = scope_for_path(SRC / "repro" / "sim" / "engine.py")
        assert scope.clocked and scope.library

    def test_obs_package_is_traced(self):
        scope = scope_for_path(SRC / "repro" / "obs" / "tracectx.py")
        assert scope.traced and not scope.clocked

    def test_gateway_and_service_are_traced(self):
        assert scope_for_path(SRC / "repro" / "gateway" / "server.py").traced
        assert scope_for_path(SRC / "repro" / "service" / "daemon.py").traced

    def test_sim_package_not_traced(self):
        assert not scope_for_path(SRC / "repro" / "sim" / "engine.py").traced

    def test_analysis_package_not_clocked(self):
        scope = scope_for_path(SRC / "repro" / "analysis" / "cdf.py")
        assert not scope.clocked and scope.library

    def test_main_module_not_library(self):
        scope = scope_for_path(SRC / "repro" / "__main__.py")
        assert not scope.library

    def test_outside_repro_gets_full_scope(self):
        assert scope_for_path(FIXTURE) == FULL_SCOPE


class TestReportsAndCatalogue:
    def test_syntax_error_is_rep000(self):
        violations = lint_source("def broken(:\n")
        assert [v.rule_id for v in violations] == ["REP000"]

    def test_fixture_yields_exactly_the_catalogue(self):
        violations = lint_file(FIXTURE)
        assert sorted(v.rule_id for v in violations) == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
        ]

    def test_render_text_shape(self):
        violations = lint_file(FIXTURE)
        text = render_text(violations)
        assert text.endswith("7 violation(s)")
        assert f"{FIXTURE}" in text.splitlines()[0]

    def test_render_json_round_trips(self):
        violations = lint_file(FIXTURE)
        payload = json.loads(render_json(violations))
        assert payload["count"] == 7
        assert {v["rule"] for v in payload["violations"]} == set(RULES) - {"REP000"}
        for entry in payload["violations"]:
            assert entry["name"] == RULES[entry["rule"]].name

    def test_source_tree_is_clean(self):
        # The acceptance gate: `repro lint src/` exits 0 on the final tree.
        assert lint_paths([SRC]) == []


class TestEntrypointDirScoping:
    """examples/ and benchmarks/ are entry-point scripts: hygiene only."""

    REPO = Path(__file__).resolve().parents[1]

    def test_examples_get_script_scope(self):
        scope = scope_for_path(self.REPO / "examples" / "online_service_demo.py")
        assert scope == SCRIPT_SCOPE
        assert not scope.library and not scope.clocked and not scope.traced

    def test_benchmarks_get_script_scope(self):
        assert (
            scope_for_path(self.REPO / "benchmarks" / "bench_gateway.py")
            == SCRIPT_SCOPE
        )

    def test_tests_keep_full_scope(self):
        assert scope_for_path(self.REPO / "tests" / "conftest.py") == FULL_SCOPE

    def test_extended_tree_is_clean(self):
        # The extended-lint CI gate: hygiene rules over tests/,
        # benchmarks/ and examples/, skipping the seeded fixtures.
        violations = [
            v
            for v in lint_paths(
                [self.REPO / "tests", self.REPO / "benchmarks", self.REPO / "examples"],
                exclude=("tests/fixtures",),
            )
            if v.rule_id in {"REP003", "REP004", "REP006"}
        ]
        assert violations == []


class TestMainFlags:
    """--select / --exclude / --explain on the lint entry point."""

    def test_exclude_skips_fixture_catalogue(self):
        fixture_dir = Path(__file__).parent / "fixtures"
        assert lint_paths([fixture_dir], exclude=("fixtures",)) == []
        assert lint_paths([FIXTURE]) != []

    def test_select_filters_rules(self, capsys):
        from repro.check import lint as lint_mod

        code = lint_mod.main([str(FIXTURE), "--select", "REP004", "--format", "json"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert {v["rule"] for v in doc["violations"]} == {"REP004"}

    def test_select_unknown_rule_errors(self):
        import pytest

        from repro.check import lint as lint_mod

        with pytest.raises(SystemExit):
            lint_mod.main([str(FIXTURE), "--select", "REP999"])

    def test_explain_prints_rule_doc(self, capsys):
        from repro.check import lint as lint_mod

        assert lint_mod.main(["--explain", "REP006"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("REP006 [print-in-library]")
        assert "rationale:" in out and "disable:" in out
