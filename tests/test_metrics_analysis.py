"""Unit tests for metrics aggregation and the analysis helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    FigureSeries,
    cdf_at,
    empirical_cdf,
    format_table,
    improvement,
    log_spaced_points,
    percentile,
    summary_rows,
)
from repro.sim import SimulationMetrics
from tests.conftest import make_job


def completed_job(seed=0, jct=100.0, meets_deadline=True, accuracy=0.8, **kwargs):
    job = make_job(seed=seed, **kwargs)
    job.completion_time = job.arrival_time + jct
    job.deadline = job.completion_time + (10.0 if meets_deadline else -10.0)
    job.accuracy_at_deadline = accuracy
    job.accuracy_requirement = 0.5
    job.iterations_completed = job.max_iterations
    return job


class TestSimulationMetrics:
    def test_record_requires_completion(self):
        metrics = SimulationMetrics()
        with pytest.raises(ValueError):
            metrics.record_job(make_job(seed=1), waiting_time=0.0)

    def test_basic_aggregates(self):
        metrics = SimulationMetrics()
        metrics.record_job(completed_job(seed=1, jct=100.0), waiting_time=10.0)
        metrics.record_job(
            completed_job(seed=2, jct=300.0, meets_deadline=False, accuracy=0.4),
            waiting_time=30.0,
        )
        assert metrics.average_jct() == pytest.approx(200.0)
        assert metrics.deadline_guarantee_ratio() == pytest.approx(0.5)
        assert metrics.average_waiting_time() == pytest.approx(20.0)
        assert metrics.average_accuracy() == pytest.approx(0.6)

    def test_accuracy_guarantee_ratio(self):
        metrics = SimulationMetrics()
        metrics.record_job(completed_job(seed=1, accuracy=0.9), waiting_time=0.0)
        metrics.record_job(completed_job(seed=2, accuracy=0.3), waiting_time=0.0)
        assert metrics.accuracy_guarantee_ratio() == pytest.approx(0.5)

    def test_jct_cdf_monotone(self):
        metrics = SimulationMetrics()
        for seed, jct in enumerate((50.0, 100.0, 200.0, 400.0)):
            metrics.record_job(completed_job(seed=seed, jct=jct), waiting_time=0.0)
        cdf = metrics.jct_cdf()
        fractions = [f for _v, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_jct_cdf_at_points(self):
        metrics = SimulationMetrics()
        for seed, jct in enumerate((50.0, 150.0)):
            metrics.record_job(completed_job(seed=seed, jct=jct), waiting_time=0.0)
        cdf = metrics.jct_cdf(points=[100.0])
        assert cdf == [(100.0, 0.5)]

    def test_makespan(self):
        metrics = SimulationMetrics()
        early = completed_job(seed=1, jct=100.0, arrival=0.0)
        late = completed_job(seed=2, jct=100.0, arrival=500.0)
        metrics.record_job(early, waiting_time=0.0)
        metrics.record_job(late, waiting_time=0.0)
        assert metrics.makespan() == pytest.approx(
            late.completion_time - early.arrival_time
        )

    def test_empty_metrics_are_zero(self):
        metrics = SimulationMetrics()
        summary = metrics.summary()
        assert summary["jobs"] == 0.0
        assert summary["avg_jct_s"] == 0.0
        assert metrics.makespan() == 0.0
        assert metrics.jct_cdf() == []

    def test_overhead_ms(self):
        metrics = SimulationMetrics()
        metrics.record_overhead(0.002)
        metrics.record_overhead(0.004)
        assert metrics.average_overhead_ms() == pytest.approx(3.0)

    def test_urgent_deadline_ratio(self):
        metrics = SimulationMetrics()
        metrics.record_job(
            completed_job(seed=1, meets_deadline=True, urgency=9), waiting_time=0.0
        )
        metrics.record_job(
            completed_job(seed=2, meets_deadline=False, urgency=10), waiting_time=0.0
        )
        metrics.record_job(
            completed_job(seed=3, meets_deadline=False, urgency=2), waiting_time=0.0
        )
        assert metrics.urgent_deadline_ratio(8) == pytest.approx(0.5)

    def test_fraction_jct_below(self):
        metrics = SimulationMetrics()
        for seed, jct in enumerate((60.0, 120.0, 240.0)):
            metrics.record_job(completed_job(seed=seed, jct=jct), waiting_time=0.0)
        assert metrics.fraction_jct_below(100.0) == pytest.approx(1 / 3)

    def test_bandwidth_totals(self):
        metrics = SimulationMetrics()
        metrics.bandwidth_mb = 1024.0
        metrics.migration_bandwidth_mb = 1024.0
        assert metrics.total_bandwidth_mb() == pytest.approx(2048.0)
        assert metrics.summary()["bandwidth_gb"] == pytest.approx(2.0)


class TestCdfHelpers:
    def test_empirical_cdf(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert cdf == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_cdf_at(self):
        assert cdf_at([1.0, 2.0, 3.0], [0.5, 2.0, 5.0]) == [0.0, 2 / 3, 1.0]

    def test_cdf_at_empty(self):
        assert cdf_at([], [1.0]) == [0.0]

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)
        assert percentile([1.0, 2.0, 3.0], 0.0) == 1.0
        assert percentile([1.0, 2.0, 3.0], 100.0) == 3.0

    def test_percentile_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 200.0)

    def test_log_spaced_points(self):
        points = log_spaced_points(1.0, 100.0, 3)
        assert points == pytest.approx([1.0, 10.0, 100.0])
        with pytest.raises(ValueError):
            log_spaced_points(0.0, 10.0)
        with pytest.raises(ValueError):
            log_spaced_points(1.0, 10.0, 1)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_percentile_within_range(self, values):
        p = percentile(values, 37.5)
        assert min(values) <= p <= max(values)


class TestTables:
    def test_format_table_aligned(self):
        text = format_table(["name", "x"], [["a", 1.0], ["bb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "---" in lines[1]

    def test_figure_series_render(self):
        series = FigureSeries(title="Fig", x_label="jobs", y_label="jct")
        series.add("MLFS", 100, 5.0)
        series.add("FIFO", 100, 9.0)
        series.add("MLFS", 200, 7.0)
        text = series.render()
        assert "jobs=100" in text and "jobs=200" in text
        assert "MLFS" in text and "FIFO" in text

    def test_figure_series_ranking(self):
        series = FigureSeries(title="Fig")
        series.add("A", 1, 5.0)
        series.add("B", 1, 3.0)
        assert series.ranking(1, ascending=True) == ["B", "A"]
        assert series.ranking(1, ascending=False) == ["A", "B"]

    def test_improvement(self):
        assert improvement(120.0, 100.0) == pytest.approx(0.2)
        assert improvement(1.0, 0.0) == 0.0

    def test_summary_rows(self):
        rows = summary_rows({"s": {"a": 1.0}}, ["a", "b"])
        assert rows[0][0] == "s"
        assert rows[0][1] == 1.0
