"""Property tests pinning the bucketed placement index to its oracle.

:meth:`PlacementEngine.candidate_servers` prunes with the free-GPU
bucketed :class:`PlacementIndex`; :meth:`candidate_servers_scan` is the
brute-force O(servers) reference it replaced.  The contract is strict
equivalence — same candidate *list* (set and order) and, downstream,
the same :meth:`select_host` choice — under arbitrary interleavings of

* live mutations between passes: placements, evictions, server
  crashes/revivals, GPU failures/revivals (failure does not bump
  ``load_version``, so stale buckets must stay harmless);
* tentative shadow commits within a pass (an eviction can *free*
  capacity the live view lacks — those servers must re-enter the
  candidate set via the shadow-delta union);
* fractional GPU demands from real task shapes (parameter servers ask
  ~0.05 GPU, workers ~0.4–0.85 — the regime whole-GPU buckets get
  wrong).

One engine instance persists across simulated passes so the
``load_version`` refresh path (not just fresh construction) is what
gets exercised.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core.config import MLFSConfig
from repro.core.placement import PlacementEngine, PlacementIndex
from repro.sim.shadow import ShadowCluster
from tests.conftest import make_job

SERVERS = 5
GPUS = 4

#: (kind, server, gpu/slot, seed) — interpreted by :func:`apply_ops`.
OP_KINDS = ("place", "evict", "fail", "revive", "gpu_fail", "gpu_revive")

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(OP_KINDS),
        st.integers(min_value=0, max_value=SERVERS - 1),
        st.integers(min_value=0, max_value=GPUS - 1),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=25,
)

#: Tentative in-pass commits: place a queued task or evict a live one.
shadow_ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(("commit_place", "commit_evict")),
        st.integers(min_value=0, max_value=SERVERS - 1),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=6,
)

#: Query demands spanning the real task shapes (PS ~0.05, workers up).
query_gpus = st.sampled_from((1, 2, 4, 8))


def fresh_task(seed, gpus=1, tag="q"):
    job = make_job(seed=seed, gpus=gpus, job_id=f"{tag}{seed}g{gpus}")
    return job.tasks[seed % len(job.tasks)]


def apply_ops(cluster, ops, placed, tag):
    """Mutate live cluster state; track placed tasks for later eviction."""
    for i, (kind, sid, gid, seed) in enumerate(ops):
        server = cluster.server(sid)
        if kind == "place":
            if server.failed:
                continue  # the cluster model rejects placement on a crash
            task = fresh_task(seed, gpus=1 + seed % 4, tag=f"{tag}p{i}s")
            gpu = server.place_task(task)
            task.mark_placed(0.0, sid, gpu.gpu_id)
            placed.append((server, task))
        elif kind == "evict" and placed:
            server, task = placed.pop(seed % len(placed))
            server.remove_task(task)
            task.mark_queued(0.0)
        elif kind == "fail":
            server.failed = True
        elif kind == "revive":
            server.failed = False
        elif kind == "gpu_fail":
            server.gpus[gid].failed = True
        elif kind == "gpu_revive":
            server.gpus[gid].failed = False


def apply_shadow_ops(shadow, shadow_ops, placed, tag):
    for i, (kind, sid, seed) in enumerate(shadow_ops):
        if kind == "commit_place":
            task = fresh_task(seed, gpus=1 + seed % 4, tag=f"{tag}c{i}s")
            shadow.commit_placement(task, sid, seed % GPUS)
        elif kind == "commit_evict" and placed:
            _, task = placed[seed % len(placed)]
            if shadow.task_location(task) is not None:
                shadow.commit_removal(task)


class TestIndexMatchesOracle:
    @settings(max_examples=60, deadline=None)
    @given(
        rounds=st.lists(
            st.tuples(ops_strategy, shadow_ops_strategy), min_size=1, max_size=4
        ),
        gpus=query_gpus,
        query_seed=st.integers(min_value=0, max_value=20),
    )
    def test_candidates_and_choice_match_scan(self, rounds, gpus, query_seed):
        cluster = Cluster.build(SERVERS, GPUS)
        engine = PlacementEngine(MLFSConfig())
        placed = []
        for round_no, (ops, shadow_ops) in enumerate(rounds):
            apply_ops(cluster, ops, placed, tag=f"r{round_no}")
            shadow = ShadowCluster(cluster)
            apply_shadow_ops(shadow, shadow_ops, placed, tag=f"r{round_no}")
            job = make_job(seed=query_seed, gpus=gpus, job_id=f"r{round_no}query")
            for task in job.tasks:
                indexed = engine.candidate_servers(task, shadow)
                scanned = engine.candidate_servers_scan(task, shadow)
                assert indexed == scanned  # same servers, same order
                choice = engine.select_host(task, shadow)
                oracle = engine.select_host(task, shadow, candidates=scanned)
                assert choice == oracle

    @settings(max_examples=30, deadline=None)
    @given(ops=ops_strategy, gpus=query_gpus)
    def test_stale_index_never_leaks_across_passes(self, ops, gpus):
        """A second pass (new shadow token) must see post-mutation loads."""
        cluster = Cluster.build(SERVERS, GPUS)
        engine = PlacementEngine(MLFSConfig())
        placed = []
        task = make_job(seed=3, gpus=gpus, job_id="probe").tasks[0]
        # Pass 1 primes the cache on the empty cluster.
        warm = ShadowCluster(cluster)
        engine.candidate_servers(task, warm)
        # Mutations land between passes; pass 2 must re-bucket.
        apply_ops(cluster, ops, placed, tag="late")
        shadow = ShadowCluster(cluster)
        assert engine.candidate_servers(task, shadow) == engine.candidate_servers_scan(
            task, shadow
        )


class TestIndexMechanics:
    def test_bucket_prefilter_prunes_full_servers(self):
        """A GPU-saturated server is not even probed for a worker task."""
        cluster = Cluster.build(4, GPUS)
        index = PlacementIndex(cluster, threshold=0.9)
        hog = cluster.server(0)
        for i in range(12):
            task = fresh_task(i, gpus=8, tag=f"hog{i}s")
            hog.place_task(task)
            task.mark_placed(0.0, 0, 0)
        index.refresh()
        ids = index.candidate_ids(0.8)
        assert 0 not in ids
        assert ids == [1, 2, 3]

    def test_candidate_ids_includes_shadow_delta_servers(self):
        """A server freed only tentatively (shadow eviction) re-enters."""
        cluster = Cluster.build(2, GPUS)
        full = cluster.server(0)
        victims = []
        for i in range(10):
            task = fresh_task(i, gpus=8, tag=f"full{i}s")
            full.place_task(task)
            task.mark_placed(0.0, 0, 0)
            victims.append(task)
        index = PlacementIndex(cluster, threshold=0.9)
        assert 0 not in index.candidate_ids(0.8)
        shadow = ShadowCluster(cluster)
        for task in victims:
            shadow.commit_removal(task)
        assert 0 in index.candidate_ids(0.8, shadow)

    def test_pickled_engine_drops_index_cache_and_rebuilds(self):
        cluster = Cluster.build(3, GPUS)
        engine = PlacementEngine(MLFSConfig())
        task = make_job(seed=5, gpus=2, job_id="pkl").tasks[0]
        shadow = ShadowCluster(cluster)
        engine.candidate_servers(task, shadow)
        assert engine._index is not None

        restored = pickle.loads(pickle.dumps(engine))
        assert restored._index is None
        assert restored._index_pass_token == -1
        # Shadow tokens are process-local: a restored engine must not
        # trust them, only rebuild — and still match the oracle.
        cluster2 = Cluster.build(3, GPUS)
        shadow2 = ShadowCluster(cluster2)
        assert restored.candidate_servers(task, shadow2) == restored.candidate_servers_scan(
            task, shadow2
        )

    def test_new_threshold_rebuilds_index(self):
        cluster = Cluster.build(3, GPUS)
        engine = PlacementEngine(MLFSConfig())
        task = make_job(seed=6, gpus=1, job_id="thr").tasks[0]
        engine.candidate_servers(task, ShadowCluster(cluster))
        first = engine._index
        engine.config = MLFSConfig(overload_threshold=0.5)
        engine.candidate_servers(task, ShadowCluster(cluster))
        assert engine._index is not first
        assert engine._index.threshold == pytest.approx(0.5)
