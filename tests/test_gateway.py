"""Tests for the gateway front tier (repro.gateway).

Covers the occupancy board and global admission gate, client target
parsing and connect retry, the worker-side ``submit_batch`` verb and
graceful SIGTERM, the supervisor, and the gateway daemon end to end —
routing, batching, aggregation, door admission, the load generator and
the per-worker telemetry determinism contract (DESIGN.md §12), plus the
distributed-tracing contract (DESIGN.md §13): client → gateway → worker
span chains, fan-out span integrity, bit-identical deterministic trace
dumps, and the merged per-worker Prometheus exposure.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.gateway import (
    GatewayConfig,
    GlobalAdmission,
    HashRing,
    OccupancyBoard,
    ThreadedGateway,
    WorkerSupervisor,
    run_loadgen,
    worker_service_configs,
)
from repro.gateway.loadgen import generate_payloads
from repro.obs import (
    derive_span_id,
    derive_trace_id,
    root_context,
    validate_metrics_text,
)
from repro.obs.distributed import analyze_trace, trace_summary
from repro.service import JobSpec, ServiceClient, ServiceConfig, parse_target
from repro.service.admission import AdmissionDecision
from repro.service.daemon import ThreadedDaemon


def gateway_config(tmp_path, **overrides) -> GatewayConfig:
    """A fast deterministic thread-mode gateway for tests."""
    defaults = dict(
        workers=2,
        spawn="thread",
        workdir=str(tmp_path / "gw"),
        round_interval=0.0,
        gossip_interval=0.0,
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


class TestOccupancyBoard:
    def test_cluster_overload_is_mean_over_alive(self):
        board = OccupancyBoard.for_partitions(range(3))
        board.update(0, overload_degree=0.9)
        board.update(1, overload_degree=0.3)
        board.update(2, overload_degree=0.6)
        assert board.cluster_overload() == pytest.approx(0.6)
        board.mark_down(2)
        assert board.cluster_overload() == pytest.approx(0.6)  # mean of 0.9, 0.3

    def test_empty_and_all_dead_read_zero(self):
        board = OccupancyBoard()
        assert board.cluster_overload() == 0.0
        board.mark_down(0)
        assert board.cluster_overload() == 0.0
        assert board.totals()["partitions_alive"] == 0

    def test_totals_and_snapshot(self):
        board = OccupancyBoard.for_partitions(range(2))
        board.update(0, active_jobs=3, queue_depth=1, admission_queue_depth=2)
        board.update(1, active_jobs=4, queue_depth=0, admission_queue_depth=0)
        totals = board.totals()
        assert totals["active_jobs"] == 7
        assert totals["queue_depth"] == 1
        assert totals["admission_queue_depth"] == 2
        snap = board.snapshot()
        assert set(snap["partitions"]) == {"0", "1"}
        assert snap["cluster"]["partitions_alive"] == 2
        assert snap["partitions"]["0"]["seq"] == 1

    def test_global_admission_threshold(self):
        board = OccupancyBoard.for_partitions(range(2))
        gate = GlobalAdmission(threshold=0.5, alpha=1.0)
        board.update(0, overload_degree=0.2)
        board.update(1, overload_degree=0.2)
        assert gate.check(board) is AdmissionDecision.ADMIT
        board.update(0, overload_degree=0.9)
        board.update(1, overload_degree=0.9)
        assert gate.check(board) is AdmissionDecision.REJECT

    def test_global_admission_disabled(self):
        board = OccupancyBoard()
        gate = GlobalAdmission(threshold=None)
        assert gate.check(board) is AdmissionDecision.ADMIT


class TestParseTarget:
    def test_unix_forms(self):
        assert parse_target("some/dir/x.sock") == ("unix", "some/dir/x.sock")
        assert parse_target("unix:///tmp/y.sock") == ("unix", "/tmp/y.sock")

    def test_tcp_forms(self):
        assert parse_target("tcp://10.0.0.1:7000") == ("tcp", ("10.0.0.1", 7000))
        assert parse_target("127.0.0.1:7463") == ("tcp", ("127.0.0.1", 7463))
        assert parse_target("localhost:80") == ("tcp", ("localhost", 80))

    def test_path_with_colon_stays_unix(self):
        # A slash anywhere means filesystem path, even with a colon.
        assert parse_target("/tmp/odd:name")[0] == "unix"

    def test_bad_tcp_port(self):
        with pytest.raises(ValueError):
            parse_target("tcp://host:notaport")


class TestClientRetry:
    def test_connect_gives_up_after_bounded_retries(self, tmp_path):
        client = ServiceClient(
            str(tmp_path / "nobody-home.sock"),
            connect_retries=2,
            connect_backoff=0.01,
        )
        start = time.perf_counter()
        with pytest.raises(FileNotFoundError):
            client.connect()
        # 2 retries at 10 + 20 ms backoff — bounded, not hanging.
        assert time.perf_counter() - start < 5.0

    def test_connect_retries_until_daemon_appears(self, tmp_path):
        config = ServiceConfig(
            socket_path=str(tmp_path / "late.sock"), round_interval=0.0
        )
        daemon = ThreadedDaemon(config)

        def start_late():
            time.sleep(0.3)
            daemon.__enter__()

        starter = threading.Thread(target=start_late)
        starter.start()
        try:
            with ServiceClient(
                config.socket_path, connect_retries=40, connect_backoff=0.05
            ) as client:
                assert client.ping()
        finally:
            starter.join()
            daemon.__exit__(None, None, None)


class TestWorkerVerbs:
    def test_submit_batch_verb_on_a_single_daemon(self, tmp_path):
        config = ServiceConfig(
            socket_path=str(tmp_path / "w.sock"), round_interval=0.0
        )
        with ThreadedDaemon(config) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                results = client.submit_batch(
                    [
                        JobSpec(job_id="a"),
                        {"job_id": "b", "gpus_requested": 2},
                        {"job_id": "bad", "gpus_requested": -1},
                    ]
                )
                assert [r["job_id"] for r in results] == ["a", "b", "bad"]
                assert results[0]["status"] == "admitted"
                assert results[1]["status"] == "admitted"
                assert results[2]["status"] == "error"
                # Responses gossip the worker's smoothed overload back.
                assert "overload_degree" in results[0]

    def test_metrics_text_is_compliant_prometheus(self, tmp_path):
        config = ServiceConfig(
            socket_path=str(tmp_path / "w.sock"), round_interval=0.0
        )
        with ThreadedDaemon(config) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                client.submit_batch([JobSpec(job_id="a"), JobSpec(job_id="b")])
                client.step(2)
                text = client.metrics_text()
        assert validate_metrics_text(text) == []
        # HELP/TYPE appear exactly once per family, families sorted.
        type_names = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert type_names == sorted(type_names)
        assert len(type_names) == len(set(type_names))

    def test_ping_reports_role_and_round(self, tmp_path):
        config = ServiceConfig(
            socket_path=str(tmp_path / "w.sock"), round_interval=0.0
        )
        with ThreadedDaemon(config) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                info = client.ping_info()
                assert info["pong"] is True
                assert info["role"] == "daemon"
                assert info["rtt_ms"] > 0.0


class TestWorkerSigterm:
    def test_sigterm_flushes_telemetry_and_exits_cleanly(self, tmp_path):
        socket_path = tmp_path / "sig.sock"
        telemetry_path = tmp_path / "sig-telemetry.jsonl"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--socket",
                str(socket_path),
                "--telemetry",
                str(telemetry_path),
                "--round-interval",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            with ServiceClient(
                str(socket_path), connect_retries=80, connect_backoff=0.05
            ) as client:
                client.submit(JobSpec(job_id="sig-1"))
                client.step(2)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        records = [
            json.loads(line)
            for line in telemetry_path.read_text().splitlines()
            if line.strip()
        ]
        # SIGTERM flushed the telemetry before the process exited.
        assert [r["round"] for r in records if "round" in r]


class TestSupervisor:
    def test_thread_mode_lifecycle_and_statuses(self, tmp_path):
        configs = worker_service_configs(
            2, tmp_path / "sup", round_interval=0.0, telemetry=False
        )
        supervisor = WorkerSupervisor(configs, spawn="thread")
        supervisor.start()
        try:
            rows = supervisor.statuses()
            assert [r["partition"] for r in rows] == [0, 1]
            assert all(r["alive"] for r in rows)
            with ServiceClient(configs[0].socket_path) as client:
                assert client.ping()
        finally:
            supervisor.stop()
        assert all(not h.alive() for h in supervisor.handles)

    def test_seeds_derive_per_partition(self, tmp_path):
        configs = worker_service_configs(3, tmp_path, seed=7)
        assert [c.seed for c in configs] == [7, 8, 9]
        assert len({c.socket_path for c in configs}) == 3

    def test_rejects_bad_arguments(self, tmp_path):
        with pytest.raises(ValueError):
            WorkerSupervisor([], spawn="thread")
        with pytest.raises(ValueError):
            worker_service_configs(0, tmp_path)
        configs = worker_service_configs(1, tmp_path)
        with pytest.raises(ValueError):
            WorkerSupervisor(configs, spawn="fork-bomb")


class TestGatewayEndToEnd:
    def test_routing_batching_and_aggregation(self, tmp_path):
        with ThreadedGateway(gateway_config(tmp_path, workers=2)) as gateway:
            with ServiceClient(gateway.target) as client:
                info = client.ping_info()
                assert info["role"] == "gateway"
                assert info["workers"] == {"total": 2, "up": 2}

                jobs = [
                    {"job_id": f"e2e-{i}", "tenant": f"tenant-{i % 6}"}
                    for i in range(30)
                ]
                results = client.submit_batch(jobs)
                assert [r["job_id"] for r in results] == [j["job_id"] for j in jobs]
                assert {r["status"] for r in results} == {"admitted"}

                # Tenant affinity: one tenant's jobs all land on one shard.
                ring = HashRing(range(2), replicas=64, seed=0)
                for job, result in zip(jobs, results):
                    assert result["partition"] == ring.lookup(job["tenant"])

                # Aggregated status equals the sum of the worker states.
                status = client.status()
                cluster = status["cluster"]
                assert cluster["jobs_submitted"] == 30
                per_part = status["partitions"]
                assert cluster["active_jobs"] == sum(
                    p["active_jobs"] for p in per_part.values()
                )
                assert sum(p["jobs_submitted"] for p in per_part.values()) == 30

                # Per-job status routes through the remembered partition.
                one = client.status("e2e-0")
                assert one["partition"] == ring.lookup("tenant-0")

                # metrics carries the gossip board and gateway counters.
                metrics = client.metrics()
                assert metrics["cluster"]["jobs_submitted"] == 30
                admitted = metrics["gateway"][
                    'gateway_submissions_total{outcome="admitted"}'
                ]
                assert admitted == 30.0
                board = metrics["gossip"]["cluster"]
                assert board["partitions_alive"] == 2

                workers = client.workers()["workers"]
                assert [w["partition"] for w in workers] == [0, 1]
                assert all(w["alive"] and w["answering"] for w in workers)

                # step/drain fan out to every partition.
                stepped = client.step(2)["partitions"]
                assert set(stepped) == {"0", "1"}
                assert client.drain()["idle"] is True

    def test_single_submit_and_cancel_route_consistently(self, tmp_path):
        with ThreadedGateway(gateway_config(tmp_path)) as gateway:
            with ServiceClient(gateway.target) as client:
                out = client.submit(JobSpec(job_id="solo", tenant="acme"))
                assert out["status"] == "admitted"
                partition = out["partition"]
                assert client.status("solo")["partition"] == partition
                client.step(1)  # let the job arrive into the engine
                cancelled = client.cancel("solo")
                assert cancelled["status"] == "cancelled"
                assert cancelled["partition"] == partition

    def test_gateway_assigns_ids_when_missing(self, tmp_path):
        with ThreadedGateway(gateway_config(tmp_path)) as gateway:
            with ServiceClient(gateway.target) as client:
                results = client.submit_batch([{}, {}, {}])
                ids = [r["job_id"] for r in results]
                assert len(set(ids)) == 3
                assert all(job_id.startswith("gw-") for job_id in ids)

    def test_door_rejects_when_cluster_overloaded(self, tmp_path):
        config = gateway_config(
            tmp_path,
            workers=2,
            servers_per_worker=1,
            gpus_per_server=1,
            global_threshold=0.02,
            global_alpha=1.0,
        )
        with ThreadedGateway(config) as gateway:
            with ServiceClient(gateway.target) as client:
                # Flood one GPU per worker, stepping so tasks place and
                # O_c rises; the responses gossip the overload back,
                # arming the door for later waves.
                rejected = 0
                for wave in range(6):
                    results = client.submit_batch(
                        [
                            {"job_id": f"flood-{wave}-{i}", "gpus_requested": 1}
                            for i in range(20)
                        ]
                    )
                    client.step(2)
                    rejected += sum(
                        1 for r in results if r["status"] == "rejected"
                    )
                assert rejected > 0
                metrics = client.metrics()
                assert (
                    metrics["gateway"][
                        'gateway_submissions_total{outcome="rejected"}'
                    ]
                    == rejected
                )

    def test_gossip_verb_polls_on_demand(self, tmp_path):
        with ThreadedGateway(gateway_config(tmp_path)) as gateway:
            with ServiceClient(gateway.target) as client:
                snap = client.gossip()
                assert snap["cluster"]["partitions_alive"] == 2
                assert all(
                    sample["alive"] and sample["rtt_ms"] > 0.0
                    for sample in snap["partitions"].values()
                )


class TestLoadgen:
    def test_generate_payloads_is_deterministic(self):
        a = list(generate_payloads(50, tenants=4, seed=3))
        b = list(generate_payloads(50, tenants=4, seed=3))
        c = list(generate_payloads(50, tenants=4, seed=4))
        assert a == b
        assert a != c
        assert [p["job_id"] for p in a] == [f"lg-{i:07d}" for i in range(50)]

    def test_trace_flag_adds_ids_without_perturbing_payloads(self):
        plain = list(generate_payloads(12, tenants=3, seed=5))
        traced = list(generate_payloads(12, tenants=3, seed=5, trace=True))
        assert all("trace_id" not in p for p in plain)
        for index, (bare, tagged) in enumerate(zip(plain, traced)):
            tagged = dict(tagged)
            trace_id = tagged.pop("trace_id")
            assert tagged == bare  # byte-identical stream otherwise
            assert trace_id == derive_trace_id(5, bare["tenant"], index)

    def test_loadgen_replays_without_loss_or_duplication(self, tmp_path):
        with ThreadedGateway(gateway_config(tmp_path, workers=2)) as gateway:
            result = run_loadgen(
                gateway.target, count=300, batch=50, tenants=8, seed=1
            )
        assert result["lost"] == 0
        assert result["duplicated"] == 0
        assert sum(result["outcomes"].values()) == 300
        assert result["submissions_per_sec"] > 0
        assert result["latency_ms"]["p99"] >= result["latency_ms"]["p50"]
        # Both partitions saw traffic.
        assert set(result["per_partition"]) == {"0", "1"}


class TestDeterminismContract:
    def run_trace(self, workdir: Path, seed: int = 0) -> dict[str, bytes]:
        """One gateway run over the canonical trace; telemetry per worker."""
        config = gateway_config(
            Path(workdir), workers=2, seed=seed, telemetry=True
        )
        with ThreadedGateway(config) as gateway:
            with ServiceClient(gateway.target) as client:
                payloads = list(generate_payloads(60, tenants=6, seed=9))
                for start in range(0, 60, 20):
                    client.submit_batch(payloads[start : start + 20])
                    client.step(2)
                client.drain()
        out = {}
        for worker_dir in sorted(Path(config.workdir).glob("worker-*")):
            out[worker_dir.name] = (worker_dir / "telemetry.jsonl").read_bytes()
        return out

    def test_same_seed_and_trace_give_bit_identical_telemetry(self, tmp_path):
        first = self.run_trace(tmp_path / "run-a")
        second = self.run_trace(tmp_path / "run-b")
        assert set(first) == set(second) == {"worker-00", "worker-01"}
        for name in first:
            assert first[name], f"{name} telemetry is empty"
            assert first[name] == second[name], (
                f"{name} telemetry differs between identical runs"
            )

    def test_different_seed_changes_the_schedule(self, tmp_path):
        first = self.run_trace(tmp_path / "run-a", seed=0)
        second = self.run_trace(tmp_path / "run-c", seed=100)
        assert any(first[name] != second[name] for name in first)


def _trace_spans(doc: dict) -> list[dict]:
    """The duration events of a merged Chrome-trace document."""
    return [e for e in doc["traceEvents"] if e.get("ph") == "X"]


class TestDistributedTracing:
    """The tentpole contract: client → gateway → worker span chains."""

    def test_single_submit_chains_client_gateway_worker(self, tmp_path):
        ctx = root_context(seed=5, tenant="acme", index=0)
        spec = JobSpec(job_id="traced-1", tenant="acme", trace_id=ctx.trace_id)
        with ThreadedGateway(gateway_config(tmp_path, trace=True)) as gateway:
            with ServiceClient(gateway.target) as client:
                result = client.submit(spec, trace=ctx)
                assert result["status"] == "admitted"
                assert result["trace_id"] == ctx.trace_id
                dump = client.trace_dump()
        assert dump["enabled"] is True
        spans = {}
        for event in _trace_spans(dump["trace"]):
            args = event.get("args") or {}
            if args.get("trace_id") == ctx.trace_id:
                spans[event["name"]] = args
        gw = spans["gateway.submit"]
        worker = spans["worker.admission"]
        # Gateway span is parented under the client's root span...
        assert gw["span_id"] == derive_span_id(ctx.trace_id, "gateway.submit")
        assert gw["parent_id"] == ctx.span_id
        # ...and the worker's admission span under the gateway's.
        assert worker["span_id"] == derive_span_id(ctx.trace_id, "worker.admission")
        assert worker["parent_id"] == gw["span_id"]

    def test_batch_fanout_spans_match_across_lanes(self, tmp_path):
        config = gateway_config(tmp_path, workers=2, trace=True)
        with ThreadedGateway(config) as gateway:
            with ServiceClient(gateway.target) as client:
                payloads = list(generate_payloads(60, tenants=8, seed=2, trace=True))
                client.submit_batch(payloads[:30])
                client.submit_batch(payloads[30:])
                dump = client.trace_dump()
        assert dump["processes"] == ["gateway", "worker-00", "worker-01"]
        summary = trace_summary(dump["trace"])
        assert summary["lanes"] >= 3  # gateway + both workers recorded spans
        analysis = analyze_trace(dump["trace"])
        # Cross-process integrity: every gateway fan-out RPC has a
        # matching worker-side span parented under it.
        assert analysis["forward_spans"] >= 2
        assert analysis["forward_spans_matched"] == analysis["forward_spans"]
        assert analysis["submissions"] == 60
        assert analysis["categories"]["gateway_batch"]["count"] == 2
        # Each admission span joins its payload's client-derived trace.
        by_trace = {
            (e.get("args") or {}).get("trace_id")
            for e in _trace_spans(dump["trace"])
            if e["name"] == "worker.admission"
        }
        assert derive_trace_id(2, payloads[0]["tenant"], 0) in by_trace

    def test_trace_dump_reports_disabled_when_off(self, tmp_path):
        with ThreadedGateway(gateway_config(tmp_path)) as gateway:
            with ServiceClient(gateway.target) as client:
                client.submit_batch([{"job_id": "plain-1"}])
                dump = client.trace_dump()
        assert dump["enabled"] is False
        assert _trace_spans(dump["trace"]) == []

    def run_traced(self, workdir: Path, seed: int = 0) -> bytes:
        """One traced gateway run over the canonical submission stream."""
        config = gateway_config(
            Path(workdir), workers=2, seed=seed, telemetry=False, trace=True
        )
        with ThreadedGateway(config) as gateway:
            with ServiceClient(gateway.target) as client:
                payloads = list(generate_payloads(60, tenants=6, seed=9, trace=True))
                for start in range(0, 60, 20):
                    client.submit_batch(payloads[start : start + 20])
                    client.step(2)
                client.drain()
                dump = client.trace_dump(deterministic=True)
        assert dump["enabled"] is True
        return json.dumps(dump["trace"], sort_keys=True).encode()

    def test_same_seed_traced_runs_dump_identical_bytes(self, tmp_path):
        first = self.run_traced(tmp_path / "run-a")
        second = self.run_traced(tmp_path / "run-b")
        assert json.loads(first)["traceEvents"], "trace is empty"
        assert first == second

    def test_gateway_metrics_text_merges_workers_with_labels(self, tmp_path):
        with ThreadedGateway(gateway_config(tmp_path, workers=2)) as gateway:
            with ServiceClient(gateway.target) as client:
                payloads = list(generate_payloads(40, tenants=8, seed=1))
                client.submit_batch(payloads)
                client.step(2)
                text = client.metrics_text()
        assert validate_metrics_text(text) == []
        # Every source appears as a worker label on its samples.
        assert 'worker="gateway"' in text
        assert 'worker="0"' in text
        assert 'worker="1"' in text
        type_names = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert type_names == sorted(type_names)
        assert len(type_names) == len(set(type_names))


class TestGatewaySpec:
    def test_round_trip_and_digest(self):
        from repro.exp import GatewaySpec

        spec = GatewaySpec(workers=4, global_threshold=0.8, seed=3)
        assert GatewaySpec.from_json(spec.to_json()) == spec
        assert spec.digest() == GatewaySpec.from_json(spec.to_json()).digest()
        assert spec.digest() != GatewaySpec(workers=8).digest()

    def test_gateway_config_is_deterministic_replay_shaped(self, tmp_path):
        from repro.exp import GatewaySpec

        config = GatewaySpec(workers=3).gateway_config(str(tmp_path))
        assert config.workers == 3
        assert config.round_interval == 0.0
        assert config.gossip_interval == 0.0
        assert config.telemetry_obs == "deterministic"
