"""The experiment engine (``repro.exp``) and the ``repro.api`` façade.

Covers the contracts the sweep engine advertises: spec JSON round-trip,
grid expansion order, bit-identical serial vs parallel merged results,
cache-based resume, per-shard failure isolation, the scheduler registry
and the ``repro sweep`` CLI verb.
"""

import dataclasses
import json

import pytest

from repro import api
from repro.baselines import RLScheduler, TiresiasScheduler
from repro.cli import main as cli_main
from repro.cluster import Cluster
from repro.core.config import MLFSConfig
from repro.exp.runner import error_record, run_shard
from repro.schedulers import build_scheduler, mlfs_config_from_mapping
from repro.sim import EngineConfig, SimulationSetup, run_simulation
from repro.workload import generate_trace

#: A tiny, fast workload shared by the sweep tests.
SMALL = api.RunSpec(
    scheduler=api.SchedulerSpec("Tiresias"),
    workload=api.WorkloadSpec(
        num_jobs=6, duration_hours=0.5, trace_seed=1, deadline_hours=(0.5, 6.0)
    ),
    cluster=api.ClusterSpec(num_servers=2, gpus_per_server=2),
    seed=2,
)


def small_grid() -> api.Grid:
    return api.Grid(
        SMALL,
        axes={
            "scheduler": [
                api.SchedulerSpec("Tiresias"),
                api.SchedulerSpec("FIFO"),
            ],
            "seed": [2, 3],
        },
    )


class TestRunSpec:
    def test_json_round_trip_equality(self):
        spec = api.RunSpec(
            scheduler=api.SchedulerSpec(
                "MLFS",
                config={"use_urgency": False, "priority": {"alpha": 0.3}},
                pretrain=api.PretrainSpec(),
            ),
            workload=api.WorkloadSpec(num_jobs=12, deadline_hours=(1.0, 3.0)),
            cluster=api.ClusterSpec(num_servers=3),
            engine=api.EngineConfig(tick_seconds=30.0),
            seed=5,
        )
        rebuilt = api.RunSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert rebuilt == spec
        assert rebuilt.digest() == spec.digest()

    def test_digest_is_stable_and_discriminating(self):
        assert SMALL.digest() == SMALL.digest()
        other = dataclasses.replace(SMALL, seed=99)
        assert other.digest() != SMALL.digest()

    def test_unknown_engine_fields_rejected(self):
        payload = SMALL.to_json()
        payload["engine"]["warp_factor"] = 9
        with pytest.raises(ValueError, match="warp_factor"):
            api.RunSpec.from_json(payload)

    def test_replace_path(self):
        grown = api.replace_path(SMALL, "workload.num_jobs", 240)
        assert grown.workload.num_jobs == 240
        assert grown.cluster == SMALL.cluster
        with pytest.raises(ValueError, match="no spec field"):
            api.replace_path(SMALL, "workload.nope", 1)


class TestGrid:
    def test_expansion_order_last_axis_fastest(self):
        grid = small_grid()
        assert len(grid) == 4
        labels = [(s.scheduler.name, s.seed) for s in grid.specs()]
        assert labels == [
            ("Tiresias", 2),
            ("Tiresias", 3),
            ("FIFO", 2),
            ("FIFO", 3),
        ]

    def test_json_round_trip(self):
        grid = small_grid()
        rebuilt = api.Grid.from_json(json.loads(json.dumps(grid.to_json())))
        assert [s.digest() for s in rebuilt.specs()] == [
            s.digest() for s in grid.specs()
        ]

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            api.Grid(SMALL, axes={"seed": []})


class TestSweepDeterminism:
    def test_serial_and_parallel_bit_identical(self):
        grid = small_grid()
        serial = api.sweep(grid, workers=0)
        parallel = api.sweep(grid, workers=4)
        assert json.dumps(serial.merged(), sort_keys=True) == json.dumps(
            parallel.merged(), sort_keys=True
        )
        assert serial.stats["failed"] == 0
        # wall-clock observations live outside the deterministic merge
        assert all(
            "overhead_ms" not in r["summary"] for r in serial.ok()
        )
        assert serial.measured.keys() == parallel.measured.keys()

    def test_matches_direct_simulation(self):
        record = api.run(SMALL)
        records = generate_trace(6, duration_seconds=1800.0, seed=1)
        setup = SimulationSetup(
            records=records,
            cluster_factory=lambda: Cluster.build(2, 2),
            workload_seed=2,
            engine_config=EngineConfig(),
            workload_config=SMALL.workload.workload_config(),
        )
        direct = run_simulation(TiresiasScheduler(), setup).summary()
        direct.pop("overhead_ms")
        assert record["summary"] == direct


class TestSweepCache:
    def test_resume_skips_finished_shards(self, tmp_path):
        grid = small_grid()
        first = api.sweep(grid, workers=0, cache_dir=tmp_path)
        assert first.stats == {"shards": 4, "executed": 4, "cached": 0, "failed": 0}
        second = api.sweep(grid, workers=0, cache_dir=tmp_path)
        assert second.stats == {"shards": 4, "executed": 0, "cached": 4, "failed": 0}
        assert json.dumps(first.merged(), sort_keys=True) == json.dumps(
            second.merged(), sort_keys=True
        )

    def test_corrupt_cache_entry_reruns(self, tmp_path):
        api.sweep([SMALL], workers=0, cache_dir=tmp_path)
        victim = tmp_path / f"{SMALL.digest()}.json"
        victim.write_text("{not json")
        result = api.sweep([SMALL], workers=0, cache_dir=tmp_path)
        assert result.stats["executed"] == 1


class TestFailureIsolation:
    def test_crashed_shard_yields_structured_error(self):
        bad = dataclasses.replace(
            SMALL, scheduler=api.SchedulerSpec("NoSuchScheduler")
        )
        result = api.sweep([SMALL, bad], workers=0)
        assert result.stats == {"shards": 2, "executed": 2, "cached": 0, "failed": 1}
        (failure,) = result.failures()
        assert failure["status"] == "error"
        assert failure["error"]["type"] == "ValueError"
        assert "NoSuchScheduler" in failure["error"]["message"]
        assert len(result.ok()) == 1

    def test_failed_shards_never_cached(self, tmp_path):
        bad = dataclasses.replace(
            SMALL, scheduler=api.SchedulerSpec("NoSuchScheduler")
        )
        api.sweep([bad], workers=0, cache_dir=tmp_path)
        assert not list(tmp_path.glob("*.json"))

    def test_run_shard_never_raises(self):
        bad = dataclasses.replace(
            SMALL, scheduler=api.SchedulerSpec("NoSuchScheduler")
        )
        record = run_shard(bad.to_json())
        assert record["status"] == "error"

    def test_error_record_shape(self):
        record = error_record(SMALL, ValueError("boom"), tb="tb")
        assert record["summary"] is None
        assert record["error"] == {
            "type": "ValueError",
            "message": "boom",
            "traceback": "tb",
        }


class TestResultsIO:
    def test_save_load_round_trip(self, tmp_path):
        result = api.sweep([SMALL], workers=0)
        path = tmp_path / "results.json"
        api.save_results(result, path)
        loaded = api.load_results(path)
        assert loaded.records == result.records

    def test_format_validated(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "other/9", "results": []}))
        with pytest.raises(ValueError, match="other/9"):
            api.load_results(path)


class TestBuildScheduler:
    def test_every_registry_name_builds(self):
        for name in api.SCHEDULER_FACTORIES:
            assert build_scheduler(name).name == name

    def test_mlf_config_overrides_applied(self):
        scheduler = build_scheduler(
            "MLF-H", {"use_bandwidth": False, "priority": {"alpha": 0.25}}
        )
        assert scheduler.config.use_bandwidth is False
        assert scheduler.config.priority.alpha == 0.25
        # MLF-H keeps its factory default: no MLF-C load control
        assert scheduler.config.enable_load_control is False

    def test_mlfs_keeps_load_control_default(self):
        assert build_scheduler("MLFS", {"use_urgency": False}).config.enable_load_control

    def test_existing_config_passes_through(self):
        config = MLFSConfig(use_deadline=False)
        assert build_scheduler("MLF-H", config).config is config

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="NoSuch"):
            build_scheduler("NoSuch")

    def test_baseline_config_rejected(self):
        with pytest.raises(ValueError, match="no config"):
            build_scheduler("Tiresias", {"anything": 1})

    def test_policy_rejected_for_policy_free_baseline(self):
        policy = object()
        with pytest.raises(ValueError, match="policy"):
            build_scheduler("FIFO", policy=policy)

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ValueError, match="invalid MLFS config"):
            mlfs_config_from_mapping({"warp_factor": 9})


class TestCommIndexLifecycle:
    def test_rl_baseline_forgets_completed_jobs(self):
        records = generate_trace(8, duration_seconds=1800.0, seed=3)
        scheduler = RLScheduler()
        setup = SimulationSetup(
            records=records,
            cluster_factory=lambda: Cluster.build(2, 2),
            workload_seed=4,
        )
        result = run_simulation(scheduler, setup)
        assert result.summary()["jobs"] > 0
        # every completed job's peer cache must have been invalidated
        assert len(scheduler.comm_index) == 0


class TestSweepCLI:
    def test_sweep_verb_writes_results(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = cli_main(
            [
                "sweep",
                "--schedulers",
                "Tiresias,FIFO",
                "--seeds",
                "0",
                "--jobs",
                "5",
                "--servers",
                "2",
                "--gpus-per-server",
                "2",
                "--hours",
                "0.5",
                "--workers",
                "0",
                "--quiet",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert len(document["results"]) == 2
        assert {r["scheduler"] for r in document["results"]} == {"Tiresias", "FIFO"}

    def test_sweep_verb_exit_2_on_failure(self, tmp_path):
        code = cli_main(
            [
                "sweep",
                "--schedulers",
                "NoSuchScheduler",
                "--seeds",
                "0",
                "--jobs",
                "5",
                "--servers",
                "2",
                "--hours",
                "0.5",
                "--workers",
                "0",
                "--quiet",
                "--out",
                str(tmp_path / "x.json"),
            ]
        )
        assert code == 2
