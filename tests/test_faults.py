"""Fault-injection layer tests: plans, the engine's fault phase,
checkpoint-restart, spec/sweep integration and the service faultctl
surface (including snapshot/restore of a faulted daemon)."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.cluster import Cluster
from repro.core import make_mlf_h
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    load_plan,
    save_plan,
)
from repro.service import JobSpec, ServiceConfig
from repro.service.daemon import SchedulerService
from repro.service.protocol import ProtocolError
from repro.sim import EngineConfig, SimulationEngine
from repro.workload import build_jobs, generate_trace


def make_engine(plan=None, num_jobs=8, seed=5, sanitize=True, servers=4):
    records = generate_trace(num_jobs, duration_seconds=1800.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    return SimulationEngine(
        make_mlf_h(),
        jobs,
        Cluster.build(servers, 4),
        EngineConfig(seed=seed, max_time=14 * 24 * 3600.0),
        sanitize=sanitize,
        faults=plan,
    )


def job_tuples(metrics):
    return [
        (r.job_id, r.jct, r.iterations_completed, r.final_accuracy)
        for r in metrics.job_records
    ]


SAMPLE_PLAN = FaultPlan(
    events=(
        FaultEvent(round_index=3, kind="server_crash", server_id=0),
        FaultEvent(round_index=5, kind="straggler_start", server_id=1, slowdown=2.0),
        FaultEvent(round_index=7, kind="server_revive", server_id=0),
        FaultEvent(round_index=9, kind="straggler_end", server_id=1),
        FaultEvent(round_index=11, kind="gpu_fail", server_id=2, gpu_id=1),
        FaultEvent(round_index=13, kind="gpu_revive", server_id=2, gpu_id=1),
    ),
    checkpoint_period=2,
)


class TestFaultPlan:
    def test_json_round_trip_exact(self):
        data = SAMPLE_PLAN.to_json()
        again = FaultPlan.from_json(data)
        assert again == SAMPLE_PLAN
        assert again.to_json() == data
        # And through an actual JSON string.
        assert FaultPlan.from_json(json.loads(json.dumps(data))) == SAMPLE_PLAN

    def test_digest_stable_and_sensitive(self):
        assert SAMPLE_PLAN.digest() == SAMPLE_PLAN.digest()
        moved = FaultPlan(
            events=SAMPLE_PLAN.events[1:], checkpoint_period=SAMPLE_PLAN.checkpoint_period
        )
        assert moved.digest() != SAMPLE_PLAN.digest()
        other_period = FaultPlan(events=SAMPLE_PLAN.events, checkpoint_period=7)
        assert other_period.digest() != SAMPLE_PLAN.digest()

    def test_events_normalized_sorted(self):
        shuffled = FaultPlan(events=tuple(reversed(SAMPLE_PLAN.events)))
        assert [e.round_index for e in shuffled.events] == sorted(
            e.round_index for e in SAMPLE_PLAN.events
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(round_index=-1, kind="server_crash", server_id=0)
        with pytest.raises(ValueError):
            FaultEvent(round_index=1, kind="meteor_strike", server_id=0)
        with pytest.raises(ValueError):
            FaultEvent(round_index=1, kind="gpu_fail", server_id=0)  # no gpu_id
        with pytest.raises(ValueError):
            FaultEvent(round_index=1, kind="straggler_start", server_id=0, slowdown=0.5)
        with pytest.raises(ValueError):
            FaultPlan.from_json({"format": "not-a-plan", "events": []})

    def test_from_mtbf_deterministic(self):
        a = FaultPlan.from_mtbf(4, 60, 20.0, seed=9, straggler_probability=0.3)
        b = FaultPlan.from_mtbf(4, 60, 20.0, seed=9, straggler_probability=0.3)
        assert a == b and a.digest() == b.digest()
        c = FaultPlan.from_mtbf(4, 60, 20.0, seed=10, straggler_probability=0.3)
        assert c != a
        assert all(1 <= e.round_index for e in a.events)
        assert all(e.kind in FAULT_KINDS for e in a.events)

    def test_save_load(self, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(SAMPLE_PLAN, path)
        assert load_plan(path) == SAMPLE_PLAN


class TestFaultInjector:
    def test_idle_until_armed(self):
        assert FaultInjector().is_idle
        assert FaultInjector(FaultPlan()).is_idle
        assert not FaultInjector(SAMPLE_PLAN).is_idle

    def test_pending_events_merge_with_plan(self):
        injector = FaultInjector(SAMPLE_PLAN)
        runtime = FaultEvent(round_index=3, kind="server_crash", server_id=2)
        injector.inject(runtime)
        taken = injector.take_events(3)
        assert runtime in taken
        assert SAMPLE_PLAN.events[0] in taken
        # Pending queue drains exactly once.
        assert injector.pending == []
        assert runtime not in injector.take_events(3)

    def test_digest_state_tracks_runtime_changes(self):
        injector = FaultInjector(SAMPLE_PLAN)
        before = injector.digest_state()
        injector.inject(FaultEvent(round_index=2, kind="server_crash", server_id=1))
        assert injector.digest_state() != before


class TestEngineFaults:
    def test_crash_kills_and_recovers(self):
        plan = FaultPlan(
            events=(
                FaultEvent(round_index=4, kind="server_crash", server_id=0),
                FaultEvent(round_index=10, kind="server_revive", server_id=0),
            ),
            checkpoint_period=1,
        )
        engine = make_engine(plan)
        metrics = engine.run()
        assert metrics.servers_failed == 1
        assert metrics.servers_revived == 1
        assert metrics.fault_events == 2
        # Every job still completes and is accounted exactly once.
        assert len(metrics.job_records) == 8
        assert engine.sanitizer.violations_raised == 0
        summary = metrics.summary()
        assert summary["fault_events"] == 2.0

    def test_no_placement_on_dead_server(self):
        plan = FaultPlan(
            events=(FaultEvent(round_index=2, kind="server_crash", server_id=0),)
        )
        engine = make_engine(plan)
        engine.start()
        while True:
            result = engine.advance()
            server = engine.cluster.server(0)
            if server.failed:
                assert server.task_count == 0
            if result.drained or result.events_processed == 0:
                break
        engine.finalize()
        assert engine.cluster.server(0).failed  # never revived
        assert engine.sanitizer.violations_raised == 0

    def test_checkpoint_rollback_accounts_lost_work(self):
        # A late crash with a coarse checkpoint period loses work.
        crash_rounds = tuple(range(6, 30, 4))
        plan = FaultPlan(
            events=tuple(
                FaultEvent(round_index=r, kind="server_crash", server_id=s)
                for r in crash_rounds
                for s in (0, 1)
            )
            + tuple(
                FaultEvent(round_index=r + 2, kind="server_revive", server_id=s)
                for r in crash_rounds
                for s in (0, 1)
            ),
            checkpoint_period=4,
        )
        engine = make_engine(plan)
        metrics = engine.run()
        assert metrics.tasks_killed > 0
        assert metrics.iterations_lost > 0
        assert engine.faults.counters["iterations_lost"] == metrics.iterations_lost
        for record in metrics.job_records:
            assert record.iterations_completed <= record.max_iterations

    def test_straggler_slows_the_run(self):
        baseline = make_engine(None, sanitize=False).run()
        slow_plan = FaultPlan(
            events=tuple(
                FaultEvent(round_index=1, kind="straggler_start", server_id=s, slowdown=4.0)
                for s in range(4)
            )
        )
        slowed = make_engine(slow_plan, sanitize=False).run()
        assert slowed.makespan() > baseline.makespan()

    def test_redundant_events_are_noops(self):
        plan = FaultPlan(
            events=(
                FaultEvent(round_index=2, kind="server_crash", server_id=0),
                FaultEvent(round_index=3, kind="server_crash", server_id=0),  # already dead
                FaultEvent(round_index=4, kind="server_revive", server_id=1),  # healthy
                FaultEvent(round_index=5, kind="gpu_revive", server_id=2, gpu_id=0),
            )
        )
        metrics = make_engine(plan).run()
        assert metrics.fault_events == 1  # only the first crash applied
        assert metrics.servers_failed == 1
        assert metrics.servers_revived == 0

    def test_same_seed_faulted_runs_identical(self):
        a = make_engine(SAMPLE_PLAN).run()
        b = make_engine(SAMPLE_PLAN).run()
        assert job_tuples(a) == job_tuples(b)
        assert a.fault_events == b.fault_events
        assert a.iterations_lost == b.iterations_lost

    def test_empty_plan_matches_no_faults(self):
        bare = make_engine(None).run()
        empty = make_engine(FaultPlan()).run()
        assert job_tuples(bare) == job_tuples(empty)
        assert bare.bandwidth_mb == empty.bandwidth_mb


class TestSpecIntegration:
    def _spec(self, plan=None):
        return api.RunSpec(
            scheduler=api.SchedulerSpec("MLF-H"),
            workload=api.WorkloadSpec(num_jobs=8, duration_hours=0.5, trace_seed=4),
            cluster=api.ClusterSpec(num_servers=3, gpus_per_server=4),
            faults=plan,
        )

    def test_spec_round_trip_and_digest(self):
        spec = self._spec(SAMPLE_PLAN)
        again = api.RunSpec.from_json(spec.to_json())
        assert again == spec
        assert again.digest() == spec.digest()
        assert self._spec(None).digest() != spec.digest()

    def test_grid_faults_axis_round_trip(self):
        plans = [None, SAMPLE_PLAN]
        grid = api.Grid(self._spec(), axes={"faults": plans})
        again = api.Grid.from_json(json.loads(json.dumps(grid.to_json())))
        assert [s.faults for s in again.specs()] == plans

    def test_mtbf_sweep_serial_parallel_bit_identical(self):
        plans = [
            api.FaultPlan.from_mtbf(3, 60, mtbf, seed=int(mtbf), checkpoint_period=2)
            for mtbf in (10.0, 25.0, 50.0)
        ]
        grid = api.Grid(self._spec(), axes={"faults": plans})
        serial = api.sweep(grid, workers=0)
        parallel = api.sweep(grid, workers=2)
        assert serial.stats["failed"] == 0 and parallel.stats["failed"] == 0
        assert json.dumps(serial.merged(), sort_keys=True) == json.dumps(
            parallel.merged(), sort_keys=True
        )
        # The three MTBF points have three distinct digests (the plan
        # participates in the spec digest, so caching can tell them apart).
        digests = {record["digest"] for record in serial.ok()}
        assert len(digests) == 3


def service_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        socket_path=str(tmp_path / "repro.sock"),
        servers=4,
        gpus_per_server=4,
        seed=7,
        round_interval=0.0,
        snapshot_dir=None,
        telemetry_path=None,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def submit_batch(core, count=6):
    specs = [
        JobSpec(model_name="svm", gpus_requested=2, max_iterations=12, urgency=3),
        JobSpec(model_name="alexnet", gpus_requested=4, max_iterations=10, urgency=6),
        JobSpec(model_name="mlp", gpus_requested=1, max_iterations=8, urgency=1),
    ]
    outcomes = []
    for index in range(count):
        outcomes.append(core.submit(specs[index % len(specs)]))
    return outcomes


class TestServiceFaultctl:
    def test_status_on_healthy_cluster(self, tmp_path):
        core = SchedulerService(service_config(tmp_path))
        status = core.faultctl("status")
        assert status["failed_servers"] == []
        assert status["failed_gpus"] == []
        assert status["counters"]["tasks_killed"] == 0

    def test_crash_and_revive_cycle(self, tmp_path):
        core = SchedulerService(service_config(tmp_path))
        outcomes = submit_batch(core)
        for _ in range(3):
            core.advance_round()
        out = core.faultctl("server_crash", server_id=0)
        assert out["queued"]["kind"] == "server_crash"
        core.advance_round()  # the pending event applies here
        status = core.faultctl("status")
        assert status["failed_servers"] == [0]
        core.faultctl("server_revive", server_id=0)
        core.advance_round()
        assert core.faultctl("status")["failed_servers"] == []
        core.drain()
        for outcome in outcomes:
            assert core.status(outcome["job_id"])["state"] == "completed"

    def test_faultctl_applies_on_idle_cluster(self, tmp_path):
        # A drained engine has no pending tick; step() must seed one so
        # a crash injected while idle still marks the server failed
        # instead of waiting for the next job to arrive.
        core = SchedulerService(service_config(tmp_path))
        core.faultctl("server_crash", server_id=2)
        core.advance_round()
        status = core.faultctl("status")
        assert status["failed_servers"] == [2]
        assert status["pending"] == []
        assert core.engine.cluster.server(2).failed

    def test_faultctl_validation(self, tmp_path):
        core = SchedulerService(service_config(tmp_path))
        with pytest.raises(ProtocolError):
            core.faultctl("meteor_strike", server_id=0)
        with pytest.raises(ProtocolError):
            core.faultctl("server_crash")  # no server_id
        with pytest.raises(ProtocolError):
            core.faultctl("server_crash", server_id=99)
        with pytest.raises(ProtocolError):
            core.faultctl("gpu_fail", server_id=0)  # no gpu_id

    def test_planned_faults_via_config(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        save_plan(
            FaultPlan(events=(FaultEvent(round_index=2, kind="server_crash", server_id=1),)),
            plan_path,
        )
        core = SchedulerService(service_config(tmp_path, faults_path=str(plan_path)))
        submit_batch(core)
        for _ in range(3):
            core.advance_round()
        assert core.faultctl("status")["failed_servers"] == [1]

    def test_snapshot_restore_preserves_fault_state(self, tmp_path):
        """Satellite: kill a server, snapshot, restore — the revived
        daemon still knows the server is dead and recovers the queued
        tasks exactly like the uninterrupted original."""
        snap_dir = tmp_path / "snaps"
        config = service_config(tmp_path, snapshot_dir=str(snap_dir))
        core = SchedulerService(config)
        outcomes = submit_batch(core)
        for _ in range(3):
            core.advance_round()
        core.faultctl("server_crash", server_id=0)
        core.advance_round()  # crash applied: tasks killed and re-queued
        assert core.engine.cluster.server(0).failed
        assert core.snapshot_now() is not None

        restored = SchedulerService.restore(snap_dir)
        # The dead server and the injector identity survive the pickle.
        assert restored.engine.cluster.server(0).failed
        assert restored.fault_injector is restored.engine.faults
        assert restored.fault_injector.counters["tasks_killed"] > 0

        core.drain()
        restored.drain()
        assert job_tuples(restored.engine.metrics) == job_tuples(core.engine.metrics)
        for outcome in outcomes:
            assert restored.status(outcome["job_id"])["state"] == "completed"

    def test_snapshot_carries_pending_faultctl_events(self, tmp_path):
        snap_dir = tmp_path / "snaps"
        core = SchedulerService(service_config(tmp_path, snapshot_dir=str(snap_dir)))
        submit_batch(core)
        core.advance_round()
        core.faultctl("server_crash", server_id=2)  # still pending…
        assert core.snapshot_now() is not None  # …when the snapshot is cut

        restored = SchedulerService.restore(snap_dir)
        assert len(restored.fault_injector.pending) == 1
        restored.advance_round()
        assert restored.engine.cluster.server(2).failed
