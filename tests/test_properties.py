"""Property-based tests on simulator-wide invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FIFOScheduler, TiresiasScheduler
from repro.cluster import Cluster
from repro.core import make_mlf_h
from repro.sim import EngineConfig, SimulationEngine, SimulationSetup, run_simulation
from repro.workload import build_jobs, generate_trace

# Hypothesis sweeps over whole simulations: minutes of wall clock.  Run
# in the dedicated slow CI step, not the tier-1 gate.
pytestmark = pytest.mark.slow


def run_workload(scheduler, num_jobs, servers, seed):
    records = generate_trace(num_jobs, duration_seconds=1200.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(servers, 4)
    engine = SimulationEngine(
        scheduler, jobs, cluster, EngineConfig(max_time=10 * 24 * 3600.0)
    )
    metrics = engine.run()
    return engine, metrics


@given(
    num_jobs=st.integers(min_value=1, max_value=12),
    servers=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=12, deadline=None)
def test_conservation_of_jobs(num_jobs, servers, seed):
    """Every submitted job is accounted exactly once in the records."""
    _engine, metrics = run_workload(FIFOScheduler(), num_jobs, servers, seed)
    assert len(metrics.job_records) == num_jobs
    assert len({r.job_id for r in metrics.job_records}) == num_jobs


@given(
    num_jobs=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=10, deadline=None)
def test_resources_fully_released(num_jobs, seed):
    """After a run the cluster holds no residual load and no queue."""
    engine, _metrics = run_workload(make_mlf_h(), num_jobs, 4, seed)
    assert engine.cluster.total_load().norm() < 1e-6
    assert engine.queue == []
    for server in engine.cluster.servers:
        assert server.task_count == 0
        for gpu in server.gpus:
            assert gpu.task_count == 0


@given(
    num_jobs=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=10, deadline=None)
def test_time_ordering_invariants(num_jobs, seed):
    """Completion ≥ arrival; waiting ≤ JCT; makespan covers every job."""
    _engine, metrics = run_workload(TiresiasScheduler(), num_jobs, 3, seed)
    makespan = metrics.makespan()
    for record in metrics.job_records:
        assert record.completion_time >= record.arrival_time
        assert 0.0 <= record.waiting_time <= record.jct + 1e-6
        assert record.jct <= makespan + 1e-6


@given(
    num_jobs=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=10, deadline=None)
def test_accuracy_invariants(num_jobs, seed):
    """Accuracy at deadline never exceeds final accuracy or the ceiling."""
    _engine, metrics = run_workload(make_mlf_h(), num_jobs, 4, seed)
    for record in metrics.job_records:
        assert 0.0 <= record.accuracy_at_deadline <= record.final_accuracy + 1e-9
        assert record.final_accuracy <= 1.0
        assert record.iterations_completed <= record.max_iterations


@given(seed=st.integers(min_value=0, max_value=30))
@settings(max_examples=8, deadline=None)
def test_identical_seeds_identical_outcomes(seed):
    """The whole pipeline is deterministic per (workload, engine) seed."""
    records = generate_trace(6, duration_seconds=900.0, seed=seed)

    def run_once():
        setup = SimulationSetup(
            records=records,
            cluster_factory=lambda: Cluster.build(4, 4),
            workload_seed=seed + 1,
            engine_config=EngineConfig(seed=seed),
        )
        return run_simulation(make_mlf_h(), setup)

    a, b = run_once(), run_once()
    assert [r.jct for r in a.metrics.job_records] == [
        r.jct for r in b.metrics.job_records
    ]
    assert a.metrics.bandwidth_mb == b.metrics.bandwidth_mb


@given(
    seed=st.integers(min_value=0, max_value=30),
    servers=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=8, deadline=None)
def test_bandwidth_nonnegative_and_bounded(seed, servers):
    """Cross-server traffic is non-negative and zero for 1-server runs."""
    _engine, metrics = run_workload(FIFOScheduler(), 5, servers, seed)
    assert metrics.bandwidth_mb >= 0.0
    _engine1, metrics1 = run_workload(FIFOScheduler(), 5, 1, seed)
    assert metrics1.bandwidth_mb == 0.0
