"""Property-based tests on simulator-wide invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FIFOScheduler, TiresiasScheduler
from repro.cluster import Cluster
from repro.core import make_mlf_h
from repro.faults import FaultEvent, FaultPlan
from repro.sim import EngineConfig, SimulationEngine, SimulationSetup, run_simulation
from repro.workload import build_jobs, generate_trace

# Hypothesis sweeps over whole simulations: minutes of wall clock.  Run
# in the dedicated slow CI step, not the tier-1 gate.
pytestmark = pytest.mark.slow


def run_workload(scheduler, num_jobs, servers, seed):
    records = generate_trace(num_jobs, duration_seconds=1200.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(servers, 4)
    engine = SimulationEngine(
        scheduler, jobs, cluster, EngineConfig(max_time=10 * 24 * 3600.0)
    )
    metrics = engine.run()
    return engine, metrics


@given(
    num_jobs=st.integers(min_value=1, max_value=12),
    servers=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=12, deadline=None)
def test_conservation_of_jobs(num_jobs, servers, seed):
    """Every submitted job is accounted exactly once in the records."""
    _engine, metrics = run_workload(FIFOScheduler(), num_jobs, servers, seed)
    assert len(metrics.job_records) == num_jobs
    assert len({r.job_id for r in metrics.job_records}) == num_jobs


@given(
    num_jobs=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=10, deadline=None)
def test_resources_fully_released(num_jobs, seed):
    """After a run the cluster holds no residual load and no queue."""
    engine, _metrics = run_workload(make_mlf_h(), num_jobs, 4, seed)
    assert engine.cluster.total_load().norm() < 1e-6
    assert engine.queue == []
    for server in engine.cluster.servers:
        assert server.task_count == 0
        for gpu in server.gpus:
            assert gpu.task_count == 0


@given(
    num_jobs=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=10, deadline=None)
def test_time_ordering_invariants(num_jobs, seed):
    """Completion ≥ arrival; waiting ≤ JCT; makespan covers every job."""
    _engine, metrics = run_workload(TiresiasScheduler(), num_jobs, 3, seed)
    makespan = metrics.makespan()
    for record in metrics.job_records:
        assert record.completion_time >= record.arrival_time
        assert 0.0 <= record.waiting_time <= record.jct + 1e-6
        assert record.jct <= makespan + 1e-6


@given(
    num_jobs=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=10, deadline=None)
def test_accuracy_invariants(num_jobs, seed):
    """Accuracy at deadline never exceeds final accuracy or the ceiling."""
    _engine, metrics = run_workload(make_mlf_h(), num_jobs, 4, seed)
    for record in metrics.job_records:
        assert 0.0 <= record.accuracy_at_deadline <= record.final_accuracy + 1e-9
        assert record.final_accuracy <= 1.0
        assert record.iterations_completed <= record.max_iterations


@given(seed=st.integers(min_value=0, max_value=30))
@settings(max_examples=8, deadline=None)
def test_identical_seeds_identical_outcomes(seed):
    """The whole pipeline is deterministic per (workload, engine) seed."""
    records = generate_trace(6, duration_seconds=900.0, seed=seed)

    def run_once():
        setup = SimulationSetup(
            records=records,
            cluster_factory=lambda: Cluster.build(4, 4),
            workload_seed=seed + 1,
            engine_config=EngineConfig(seed=seed),
        )
        return run_simulation(make_mlf_h(), setup)

    a, b = run_once(), run_once()
    assert [r.jct for r in a.metrics.job_records] == [
        r.jct for r in b.metrics.job_records
    ]
    assert a.metrics.bandwidth_mb == b.metrics.bandwidth_mb


@given(
    seed=st.integers(min_value=0, max_value=30),
    servers=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=8, deadline=None)
def test_bandwidth_nonnegative_and_bounded(seed, servers):
    """Cross-server traffic is non-negative and zero for 1-server runs."""
    _engine, metrics = run_workload(FIFOScheduler(), 5, servers, seed)
    assert metrics.bandwidth_mb >= 0.0
    _engine1, metrics1 = run_workload(FIFOScheduler(), 5, 1, seed)
    assert metrics1.bandwidth_mb == 0.0


# ---------------------------------------------------------------------------
# Fault-injection properties (repro.faults)
# ---------------------------------------------------------------------------

#: Servers in every faulted run below; plans target ids within range.
FAULT_SERVERS = 4

_rounds = st.integers(min_value=1, max_value=40)
_server_ids = st.integers(min_value=0, max_value=FAULT_SERVERS - 1)

#: Any structurally valid fault event against a FAULT_SERVERS cluster —
#: including nonsensical sequences (reviving a healthy server, double
#: crashes); the engine must treat those as no-ops, not corruption.
fault_events = st.one_of(
    st.builds(
        FaultEvent,
        round_index=_rounds,
        kind=st.sampled_from(["server_crash", "server_revive"]),
        server_id=_server_ids,
    ),
    st.builds(
        FaultEvent,
        round_index=_rounds,
        kind=st.sampled_from(["gpu_fail", "gpu_revive"]),
        server_id=_server_ids,
        gpu_id=st.integers(min_value=0, max_value=3),
    ),
    st.builds(
        FaultEvent,
        round_index=_rounds,
        kind=st.just("straggler_start"),
        server_id=_server_ids,
        slowdown=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    ),
    st.builds(
        FaultEvent,
        round_index=_rounds,
        kind=st.just("straggler_end"),
        server_id=_server_ids,
    ),
)

fault_plans = st.builds(
    FaultPlan,
    events=st.lists(fault_events, max_size=10).map(tuple),
    checkpoint_period=st.integers(min_value=1, max_value=5),
)


def run_faulted(scheduler, num_jobs, seed, plan, sanitize=True):
    records = generate_trace(num_jobs, duration_seconds=1200.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(FAULT_SERVERS, 4)
    # A plan may crash every server and never revive one, in which case
    # the engine ticks until max_time; one day bounds that worst case
    # while leaving fault-free jobs (minutes long) room to finish.
    engine = SimulationEngine(
        scheduler,
        jobs,
        cluster,
        EngineConfig(max_time=24 * 3600.0),
        sanitize=sanitize,
        faults=plan,
    )
    metrics = engine.run()
    return engine, metrics


@given(
    num_jobs=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=30),
    plan=fault_plans,
)
@settings(max_examples=10, deadline=None)
def test_faults_every_job_accounted(num_jobs, seed, plan):
    """Killed tasks re-queue and finish: each job lands in the records
    exactly once, with its iteration count within bounds, no matter what
    the plan does to the cluster."""
    engine, metrics = run_faulted(make_mlf_h(), num_jobs, seed, plan)
    assert len(metrics.job_records) == num_jobs
    assert len({r.job_id for r in metrics.job_records}) == num_jobs
    for record in metrics.job_records:
        assert 0 <= record.iterations_completed <= record.max_iterations
    assert engine.sanitizer.violations_raised == 0


@given(
    num_jobs=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=20),
    plan=fault_plans,
)
@settings(max_examples=10, deadline=None)
def test_faults_conserve_resources(num_jobs, seed, plan):
    """Kill/revive cycles leak nothing: after the run every server —
    dead or alive — holds zero tasks and zero residual load."""
    engine, _metrics = run_faulted(FIFOScheduler(), num_jobs, seed, plan, sanitize=False)
    assert engine.cluster.total_load().norm() < 1e-6
    assert engine.queue == []
    for server in engine.cluster.servers:
        assert server.task_count == 0
        for gpu in server.gpus:
            assert gpu.task_count == 0


@given(seed=st.integers(min_value=0, max_value=30))
@settings(max_examples=8, deadline=None)
def test_empty_fault_plan_is_bit_identical(seed):
    """An attached-but-empty plan must not perturb the schedule at all:
    the fault phase short-circuits before touching engine state."""
    def run_once(plan):
        records = generate_trace(6, duration_seconds=900.0, seed=seed)
        jobs = build_jobs(records, seed=seed + 1)
        engine = SimulationEngine(
            make_mlf_h(),
            jobs,
            Cluster.build(FAULT_SERVERS, 4),
            EngineConfig(seed=seed),
            faults=plan,
        )
        metrics = engine.run()
        return [
            (r.job_id, r.jct, r.iterations_completed, r.final_accuracy)
            for r in metrics.job_records
        ], metrics.bandwidth_mb

    bare = run_once(None)
    empty = run_once(FaultPlan())
    assert bare == empty
