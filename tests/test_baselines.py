"""Behavioural tests for the seven comparison schedulers."""

import pytest

from repro.baselines import (
    FIFOScheduler,
    FairScheduler,
    GandivaScheduler,
    GrapheneScheduler,
    HyperSchedScheduler,
    RLScheduler,
    SLAQScheduler,
    TiresiasScheduler,
    pack_tasks,
    waiting_jobs,
)
from repro.cluster import Cluster
from repro.core import FEATURE_SIZE
from repro.learncurve import AccuracyPredictor, RuntimePredictor
from repro.rl import ScoringPolicy
from repro.sim import (
    EngineConfig,
    SchedulingContext,
    SimulationSetup,
    run_simulation,
)
from repro.sim.shadow import ShadowCluster
from repro.workload import build_jobs, generate_trace
from tests.conftest import make_job

ALL_BASELINES = [
    FIFOScheduler,
    FairScheduler,
    GandivaScheduler,
    GrapheneScheduler,
    HyperSchedScheduler,
    RLScheduler,
    SLAQScheduler,
    TiresiasScheduler,
]


def small_setup(num_jobs=12, seed=30, servers=4):
    records = generate_trace(num_jobs, duration_seconds=1800.0, seed=seed)
    return SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(servers, 4),
        workload_seed=seed + 1,
        engine_config=EngineConfig(max_time=3 * 24 * 3600.0),
    )


def make_ctx(jobs, cluster, now=0.0):
    return SchedulingContext(
        now=now,
        cluster=cluster,
        queue=[t for j in jobs for t in j.queued_tasks()],
        active_jobs=jobs,
        overload_threshold=0.9,
        system_overload_threshold=0.9,
        accuracy_predictor=AccuracyPredictor(noise_std=0.0),
        runtime_predictor=RuntimePredictor(cold_error_std=0.0, warm_error_std=0.0),
    )


class TestPackTasks:
    def test_pack_succeeds_on_empty_cluster(self, small_cluster):
        job = make_job(seed=31)
        shadow = ShadowCluster(small_cluster)
        assignments = pack_tasks(job.tasks, shadow, threshold=0.9)
        assert assignments is not None
        assert len(assignments) == len(job.tasks)

    def test_pack_rolls_back_on_failure(self):
        cluster = Cluster.build(1, 1)
        job = make_job(seed=32, gpus=8)
        shadow = ShadowCluster(cluster)
        before = shadow.snapshot()
        result = pack_tasks(job.tasks, shadow, threshold=0.9)
        if result is None:
            assert shadow.snapshot() == before

    def test_pack_prefers_preferred_servers(self, small_cluster):
        job = make_job(seed=33, gpus=1)
        shadow = ShadowCluster(small_cluster)
        assignments = pack_tasks(
            job.tasks, shadow, threshold=0.9, preferred_servers=[2]
        )
        assert assignments is not None
        assert assignments[0][1] == 2


class TestEachBaselineRuns:
    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES)
    def test_completes_workload(self, scheduler_cls):
        result = run_simulation(scheduler_cls(), small_setup())
        assert result.summary()["jobs"] == 12
        assert result.metrics.average_jct() > 0.0

    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES)
    def test_gang_placement_all_or_nothing(self, scheduler_cls):
        jobs = build_jobs(generate_trace(4, duration_seconds=10.0, seed=34), seed=35)
        for job in jobs:
            for task in job.tasks:
                task.mark_queued(0.0)
        cluster = Cluster.build(6, 4)
        decision = scheduler_cls().on_schedule(make_ctx(jobs, cluster))
        placed = {}
        for p in decision.placements:
            placed.setdefault(p.task.job_id, 0)
            placed[p.task.job_id] += 1
        for job in jobs:
            assert placed.get(job.job_id, 0) in (0, len(job.tasks))


class TestFIFO:
    def test_admission_respects_arrival_order(self):
        jobs = build_jobs(generate_trace(5, duration_seconds=100.0, seed=36), seed=37)
        ordered = FIFOScheduler().job_order(jobs, None)
        arrivals = [j.arrival_time for j in ordered]
        assert arrivals == sorted(arrivals)


class TestGandiva:
    def test_affinity_preference(self):
        cluster = Cluster.build(4, 4)
        resident = make_job(seed=38, gpus=4, job_id="resident")
        for task in resident.tasks:
            gpu = cluster.server(1).place_task(task)
            task.mark_placed(0.0, 1, gpu.gpu_id)
        incoming = make_job(seed=39, gpus=4, job_id="incoming")
        preferred = GandivaScheduler().preferred_servers(
            incoming, make_ctx([resident, incoming], cluster)
        )
        assert 1 in preferred

    def test_migrates_off_hot_gpu(self):
        cluster = Cluster.build(2, 4)
        jobs = []
        for seed in (40, 41, 42, 43):
            job = make_job(seed=seed, job_id=f"g{seed}")
            for task in job.tasks:
                gpu = cluster.server(0).place_task(task, cluster.server(0).gpus[0])
                task.mark_placed(0.0, 0, 0)
            jobs.append(job)
        gpu0 = cluster.server(0).gpus[0]
        if gpu0.utilization <= 0.9:
            pytest.skip("GPU not hot in this draw")
        decision = GandivaScheduler().on_schedule(make_ctx(jobs, cluster))
        assert decision.migrations


class TestTiresias:
    def test_attained_service_lowers_priority(self):
        scheduler = TiresiasScheduler()
        cluster = Cluster.build(4, 4)
        fresh = make_job(seed=44, job_id="fresh")
        served = make_job(seed=45, job_id="served")
        served.estimated_duration = 3600.0 * 100
        served.max_iterations = 100
        for task in served.tasks:
            gpu = cluster.server(0).place_task(task)
            task.mark_placed(0.0, 0, gpu.gpu_id)
        # A pass at t=0 opens the running job's service stint; 60 hours
        # later its attained GPU-time dominates the fresh job's zero.
        scheduler.begin_pass(make_ctx([fresh, served], cluster, now=0.0))
        later = make_ctx([fresh, served], cluster, now=60 * 3600.0)
        assert scheduler.attained_service(served, later.now) > 0.0
        assert scheduler.attained_service(fresh, later.now) == 0.0
        q_fresh = scheduler.queue_index(fresh, later)
        q_served = scheduler.queue_index(served, later)
        assert q_served >= q_fresh

    def test_preempts_long_served_when_waiting(self):
        scheduler = TiresiasScheduler()
        cluster = Cluster.build(2, 4)
        running = make_job(seed=46, job_id="running")
        for task in running.tasks:
            gpu = cluster.server(0).place_task(task)
            task.mark_placed(0.0, 0, gpu.gpu_id)
        running.estimated_duration = 3600.0 * 50
        scheduler.begin_pass(make_ctx([running], cluster, now=0.0))
        waiting = make_job(seed=47, job_id="waiting")
        for task in waiting.tasks:
            task.mark_queued(0.0)
        ctx = make_ctx([running, waiting], cluster, now=80 * 3600.0)
        victims = scheduler.preemptions(ctx)
        assert running in victims

    def test_stint_closes_on_eviction_and_completion(self):
        scheduler = TiresiasScheduler()
        cluster = Cluster.build(2, 4)
        job = make_job(seed=46, job_id="stint")
        for task in job.tasks:
            gpu = cluster.server(0).place_task(task)
            task.mark_placed(0.0, 0, gpu.gpu_id)
        scheduler.begin_pass(make_ctx([job], cluster, now=0.0))
        banked_at_close = 100.0 * job.gpus_requested
        scheduler._close_stint(job, 100.0)
        # Attained service freezes once the stint is closed.
        assert scheduler.attained_service(job, 500.0) == banked_at_close
        scheduler.on_job_complete(job, 600.0)
        assert scheduler.attained_service(job, 700.0) == 0.0


class TestSLAQ:
    def test_quality_score_decreases_with_progress(self):
        scheduler = SLAQScheduler()
        cluster = Cluster.build(2, 4)
        job = make_job(seed=48, iterations=50)
        ctx = make_ctx([job], cluster)
        early = scheduler.quality_score(job, ctx)
        job.iterations_completed = 40
        late = scheduler.quality_score(job, ctx)
        assert late < early

    def test_finished_job_scores_zero(self):
        scheduler = SLAQScheduler()
        cluster = Cluster.build(2, 4)
        job = make_job(seed=48, iterations=10)
        job.iterations_completed = 10
        assert scheduler.quality_score(job, make_ctx([job], cluster)) == 0.0


class TestFair:
    def test_fair_share(self):
        scheduler = FairScheduler()
        cluster = Cluster.build(4, 4)
        jobs = [make_job(seed=s, job_id=f"f{s}") for s in (49, 50)]
        ctx = make_ctx(jobs, cluster)
        assert scheduler.fair_share(ctx) == pytest.approx(16.0 / 2)

    def test_under_served_first(self):
        scheduler = FairScheduler()
        cluster = Cluster.build(4, 4)
        hog = make_job(seed=51, job_id="hog")
        for task in hog.tasks:
            gpu = cluster.server(0).place_task(task)
            task.mark_placed(0.0, 0, gpu.gpu_id)
        newcomer = make_job(seed=52, job_id="new")
        ordered = scheduler.job_order([hog, newcomer], make_ctx([hog, newcomer], cluster))
        assert ordered[0].job_id == "new"


class TestGraphene:
    def test_troublesome_tasks_first(self):
        scheduler = GrapheneScheduler()
        cluster = Cluster.build(4, 4)
        job = make_job(seed=53, model="alexnet", gpus=4)
        for task in job.tasks:
            task.mark_queued(0.0)
        scheduler.job_order([job], make_ctx([job], cluster))
        scores = [scheduler._troublesomeness(t) for t in job.tasks]
        assert scores == sorted(scores, reverse=True)

    def test_score_prefers_short_jobs(self):
        scheduler = GrapheneScheduler()
        cluster = Cluster.build(4, 4)
        short = make_job(seed=54, iterations=5, job_id="short")
        long = make_job(seed=54, iterations=200, job_id="long")
        ctx = make_ctx([short, long], cluster)
        assert scheduler.job_score(short, ctx) > scheduler.job_score(long, ctx)


class TestHyperSched:
    def test_gain_zero_past_deadline(self):
        scheduler = HyperSchedScheduler()
        cluster = Cluster.build(2, 4)
        job = make_job(seed=55)
        ctx = make_ctx([job], cluster, now=job.deadline + 1.0)
        assert scheduler.accuracy_gain_before_deadline(job, ctx) == 0.0

    def test_never_pauses_deadline_critical(self):
        scheduler = HyperSchedScheduler(pause_gain_threshold=1.0)  # pause-everything
        cluster = Cluster.build(2, 4)
        running = make_job(seed=56, iterations=100, job_id="crit")
        for task in running.tasks:
            gpu = cluster.server(0).place_task(task)
            task.mark_placed(0.0, 0, gpu.gpu_id)
        running.iterations_completed = 50
        waiting = make_job(seed=57, job_id="waiting")
        for task in waiting.tasks:
            task.mark_queued(0.0)
        # Critical: deadline imminent relative to remaining time.
        running.deadline = 1.0
        ctx = make_ctx([running, waiting], cluster)
        assert running not in scheduler.preemptions(ctx)


class TestRLBaseline:
    def test_accepts_trained_policy(self):
        policy = ScoringPolicy(feature_size=FEATURE_SIZE, seed=4)
        result = run_simulation(RLScheduler(policy), small_setup(seed=58))
        assert result.summary()["jobs"] == 12

    def test_rejects_bad_feature_size(self):
        with pytest.raises(ValueError):
            RLScheduler(ScoringPolicy(feature_size=2, seed=4))

    def test_waiting_jobs_helper(self):
        cluster = Cluster.build(2, 4)
        job = make_job(seed=59)
        for task in job.tasks:
            task.mark_queued(0.0)
        ctx = make_ctx([job], cluster)
        assert waiting_jobs(ctx) == [job]
