"""Tests for the observability layer (metrics, tracing, timelines).

Covers the registry (Prometheus rendering, label children, pickling),
the tracer (span nesting, the disabled no-op path, Chrome-trace
round-tripping), per-job timelines, and the engine integration: phase
spans per scheduler, trace files written by ``SimulationEngine(trace=)``
and the zero-cost NULL_OBSERVER default.

The distributed half: deterministic trace/span IDs and the contextvar
trace context (``repro.obs.tracectx``), asyncio-task isolation of the
observer/trace routing, Prometheus text parsing/merging/validation
(``repro.obs.promtext``) and the cluster-wide trace merge and analysis
(``repro.obs.distributed``).
"""

from __future__ import annotations

import asyncio
import json
import pickle

import pytest

from repro.cluster import Cluster
from repro.core import make_mlf_h, make_mlfs
from repro.core.state import FEATURE_SIZE
from repro.obs import (
    NULL_OBSERVER,
    MetricsRegistry,
    NullTracer,
    Observer,
    SCHEDULER_PHASES,
    SpanRecord,
    TimelineEvent,
    TimelineRecorder,
    TraceContext,
    Tracer,
    current_observer,
    current_trace_context,
    derive_span_id,
    derive_trace_id,
    merge_metrics_text,
    parse_metrics_text,
    root_context,
    set_current_observer,
    span,
    trace_context,
    validate_metrics_text,
)
from repro.obs.distributed import (
    ProcessTrace,
    analyze_trace,
    merge_chrome_traces,
    render_top,
    render_trace_analysis,
    trace_summary,
)
from repro.obs.promtext import escape_label_value
from repro.rl.policy import ScoringPolicy
from repro.sim import EngineConfig, SimulationEngine
from repro.workload import build_jobs, generate_trace

WEEK = 7 * 24 * 3600.0


def small_engine(scheduler=None, num_jobs=12, servers=4, seed=21, **engine_kwargs):
    records = generate_trace(num_jobs, duration_seconds=1800.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(servers, 4)
    return SimulationEngine(
        scheduler or make_mlf_h(),
        jobs,
        cluster,
        EngineConfig(max_time=WEEK),
        **engine_kwargs,
    )


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c", "a counter").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(4.5)
        reg.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        reg.histogram("h").observe(100.0)
        snap = reg.scalar_snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 4.5
        assert snap["h_count"] == 2
        assert snap["h_sum"] == 100.5

    def test_labelled_children(self):
        reg = MetricsRegistry()
        family = reg.counter("ops", "by kind", labels=("kind",))
        family.labels("read").inc()
        family.labels("read").inc()
        family.labels("write").inc()
        snap = reg.scalar_snapshot()
        assert snap['ops{kind="read"}'] == 2
        assert snap['ops{kind="write"}'] == 1
        with pytest.raises(ValueError):
            family.labels()  # label count mismatch

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_render_text_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "Jobs seen.").inc(5)
        hist = reg.histogram("lat", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = reg.render_text()
        assert "# HELP jobs_total Jobs seen." in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 5" in text
        # Buckets are cumulative and end with +Inf = count.
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum" in text
        assert "lat_count 3" in text
        assert text.endswith("\n")

    def test_registry_pickles(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.histogram("h", labels=("p",)).labels("x").observe(0.2)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.scalar_snapshot() == reg.scalar_snapshot()
        clone.counter("c").inc()  # still usable after restore
        assert clone.scalar_snapshot()["c"] == 8


class TestTracer:
    def test_spans_nest(self):
        obs = Observer(tracer=Tracer())
        with obs.span("round"):
            with obs.span("priority"):
                pass
            with obs.span("placement"):
                with obs.span("rl_inference"):
                    pass
        by_name = {r.name: r for r in obs.tracer.events}
        assert by_name["round"].depth == 0
        assert by_name["priority"].depth == 1
        assert by_name["placement"].depth == 1
        assert by_name["rl_inference"].depth == 2
        # Children close before parents: the round span is last.
        assert obs.tracer.events[-1].name == "round"
        # The parent's interval contains the children's.
        rnd = by_name["round"]
        for child in ("priority", "placement", "rl_inference"):
            rec = by_name[child]
            assert rec.start_us >= rnd.start_us
            assert rec.start_us + rec.dur_us <= rnd.start_us + rnd.dur_us + 1.0

    def test_disabled_tracer_records_nothing(self):
        obs = Observer(tracer=NullTracer())
        with obs.span("round"):
            with obs.span("priority"):
                pass
        assert len(obs.tracer) == 0
        assert obs.tracer.chrome_events() == []
        # The phase histogram still observes (metrics stay on).
        assert obs.registry.scalar_snapshot()[
            'mlfs_scheduler_phase_seconds_count{phase="round"}'
        ] == 1

    def test_chrome_trace_round_trips(self, tmp_path):
        obs = Observer(tracer=Tracer())
        with obs.span("round", round=3):
            with obs.span("priority", jobs=7):
                pass
        path = obs.tracer.write(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["name"] in ("round", "priority")
        args = {e["name"]: e.get("args") for e in events}
        assert args["priority"] == {"jobs": 7}

    def test_max_events_cap(self):
        tracer = Tracer(max_events=2)
        obs = Observer(tracer=tracer)
        for _ in range(5):
            with obs.span("round"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.to_chrome_trace()["otherData"]["dropped_spans"] == 3


class TestTimelineRecorder:
    def test_record_and_history(self):
        recorder = TimelineRecorder()
        recorder.record("j1", TimelineEvent(time=1.0, event="submitted"))
        recorder.record(
            "j1",
            TimelineEvent(
                time=2.0, event="placed", task_id="t0", server_id=3, priority=0.5
            ),
        )
        history = recorder.history("j1")
        assert [e["event"] for e in history] == ["submitted", "placed"]
        assert history[1]["server_id"] == 3
        assert history[1]["priority"] == 0.5
        assert "gpu_id" not in history[1]  # Nones dropped
        assert recorder.history("missing") == []

    def test_capped_at_max_jobs(self):
        recorder = TimelineRecorder(max_jobs=2)
        for index in range(4):
            recorder.record(f"j{index}", TimelineEvent(time=float(index), event="submitted"))
        assert len(recorder) == 2
        assert recorder.job_ids() == ["j2", "j3"]
        assert "j0" not in recorder


class TestObserverRouting:
    def test_defaults_to_null_observer(self):
        assert current_observer() is NULL_OBSERVER
        # Module-level spans are no-ops with no active observer.
        with span("priority"):
            pass

    def test_activation_routes_and_restores(self):
        obs = Observer(tracer=Tracer())
        previous = set_current_observer(obs)
        try:
            assert current_observer() is obs
            with span("priority"):
                pass
        finally:
            set_current_observer(previous)
        assert current_observer() is NULL_OBSERVER
        assert [r.name for r in obs.tracer.events] == ["priority"]

    def test_observer_pickles_with_counts(self):
        obs = Observer(tracer=Tracer())
        obs.job_event("j1", "placed", 1.0, task_id="t0", server_id=0)
        obs.job_event("j1", "completed", 5.0, jct=4.0)
        with obs.span("round"):
            pass
        clone = pickle.loads(pickle.dumps(obs))
        snap = clone.registry.scalar_snapshot()
        assert snap["mlfs_task_placements_total"] == 1
        assert snap["mlfs_job_completions_total"] == 1
        assert clone.timeline.history("j1")[-1]["jct"] == 4.0
        # Re-registered family handles keep feeding the same registry.
        clone.job_event("j2", "placed", 6.0)
        assert clone.registry.scalar_snapshot()["mlfs_task_placements_total"] == 2


class TestEngineIntegration:
    def test_default_observer_is_null(self):
        engine = small_engine()
        assert engine.obs is NULL_OBSERVER
        engine.run()  # no observability cost, no errors

    def test_trace_file_written_with_phases(self, tmp_path):
        path = tmp_path / "mlfh.json"
        engine = small_engine(trace=path)
        engine.run()
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        # MLF-H emits the heuristic phases each round.
        assert {"round", "priority", "migration", "placement"} <= names

    def test_mlfs_rl_phase_emits_all_five_spans(self, tmp_path):
        path = tmp_path / "mlfs.json"
        scheduler = make_mlfs(policy=ScoringPolicy(feature_size=FEATURE_SIZE, seed=7))
        engine = small_engine(scheduler=scheduler, trace=path)
        engine.run()
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert set(SCHEDULER_PHASES) <= names

    def test_job_timelines_and_counters(self):
        obs = Observer()
        engine = small_engine(observer=obs)
        engine.run()
        snap = obs.registry.scalar_snapshot()
        assert snap["mlfs_job_arrivals_total"] == 12
        assert snap["mlfs_job_completions_total"] == 12
        assert snap["mlfs_task_placements_total"] >= 12
        assert snap["mlfs_rounds_total"] > 0
        assert len(obs.timeline) == 12
        for job_id in obs.timeline.job_ids():
            events = [e["event"] for e in obs.timeline.history(job_id)]
            assert events[0] == "submitted"
            assert events[1] == "queued"
            assert "placed" in events
            assert events[-1] in ("completed", "stopped")
        # Per-phase latency histograms populate from the same spans.
        assert snap['mlfs_scheduler_phase_seconds_count{phase="priority"}'] > 0

    def test_observed_run_matches_unobserved(self):
        """Instrumentation must not perturb the schedule."""
        plain = small_engine(seed=29)
        plain.run()
        observed = small_engine(seed=29, observer=Observer(tracer=Tracer()))
        observed.run()
        plain_out = sorted(
            (r.job_id, r.jct, r.iterations_completed)
            for r in plain.metrics.job_records
        )
        observed_out = sorted(
            (r.job_id, r.jct, r.iterations_completed)
            for r in observed.metrics.job_records
        )
        assert plain_out == observed_out


class TestTraceContext:
    def test_ids_are_deterministic_pure_functions(self):
        assert derive_trace_id(0, "acme", 1) == derive_trace_id(0, "acme", 1)
        assert derive_trace_id(0, "acme", 1) != derive_trace_id(0, "acme", 2)
        assert derive_trace_id(0, "acme", 1) != derive_trace_id(1, "acme", 1)
        trace_id = derive_trace_id(3, "t", 7)
        assert len(trace_id) == 16
        int(trace_id, 16)  # hex
        assert derive_span_id(trace_id, "a") != derive_span_id(trace_id, "b")

    def test_child_parents_under_current_span(self):
        root = root_context(seed=0, tenant="t", index=0)
        assert root.span_id == derive_span_id(root.trace_id, "client.submit")
        child = root.child("gateway.submit")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id == derive_span_id(root.trace_id, "gateway.submit")

    def test_wire_round_trip_drops_local_parent(self):
        ctx = root_context(seed=0, tenant="t", index=0).child("gateway.submit")
        wire = ctx.to_wire()
        assert set(wire) == {"trace_id", "span_id"}
        back = TraceContext.from_wire(wire)
        assert (back.trace_id, back.span_id) == (ctx.trace_id, ctx.span_id)
        assert back.parent_id is None  # parent_id is process-local

    def test_from_wire_rejects_malformed(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire("not-a-dict") is None
        assert TraceContext.from_wire({}) is None
        partial = TraceContext.from_wire({"trace_id": "abc"})
        assert partial is not None
        assert partial.span_id == derive_span_id("abc", "root")

    def test_active_context_nests_and_restores(self):
        assert current_trace_context() is None
        outer = root_context(seed=0, tenant="t", index=0)
        with trace_context(outer):
            assert current_trace_context() is outer
            with trace_context(outer.child("gateway.submit")) as inner:
                assert current_trace_context() is inner
            assert current_trace_context() is outer
            with trace_context(None):  # None deactivates tagging
                assert current_trace_context() is None
        assert current_trace_context() is None


class TestTracerDistributed:
    def test_spans_stamp_active_trace_context(self):
        tracer = Tracer()
        ctx = root_context(seed=1, tenant="t", index=0).child("gateway.submit")
        with tracer.span("gateway.submit", ctx=ctx, job_id="j1"):
            pass
        with tracer.span("untagged"):
            pass
        tagged, untagged = tracer.events
        assert tagged.trace_id == ctx.trace_id
        assert tagged.span_id == ctx.span_id
        assert tagged.parent_id == ctx.parent_id
        assert tagged.args == {"job_id": "j1"}
        assert untagged.trace_id is None

    def test_seq_is_monotone_and_survives_pickle(self):
        tracer = Tracer()
        with tracer.span("round"):
            pass
        with tracer.span("priority"):
            pass
        clone = pickle.loads(pickle.dumps(tracer))
        assert [r.name for r in clone.events] == ["round", "priority"]
        assert [r.seq for r in clone.events] == [0, 1]
        with clone.span("placement"):
            pass
        # Snapshot/restore keeps counting where it left off.
        assert clone.events[-1].seq == 2

    def test_dump_round_trips_and_resets(self):
        tracer = Tracer()
        with tracer.span("round", jobs=3):
            pass
        kept = list(tracer.events)
        dump = tracer.dump(role="daemon", reset=True)
        assert dump["role"] == "daemon"
        assert dump["dropped"] == 0
        assert tracer.events == []  # reset cleared storage
        assert [SpanRecord.from_dict(r) for r in dump["events"]] == kept
        # The seq counter keeps counting across reset boundaries.
        with tracer.span("round"):
            pass
        assert tracer.events[0].seq == 1


class TestAsyncContextIsolation:
    """ContextVar routing: tasks interleaving on one event loop (the
    gateway/daemon servers) must not leak observers or trace contexts
    into one another — the regression the thread-local → contextvar
    migration exists to prevent."""

    def test_observers_are_task_local_under_interleaving(self):
        async def worker(name, obs, gate):
            set_current_observer(obs)
            await gate.wait()  # both tasks have activated their observer
            with span("round", task=name):
                await asyncio.sleep(0)  # interleave inside the span
            assert current_observer() is obs

        async def main():
            a, b = Observer(tracer=Tracer()), Observer(tracer=Tracer())
            gate = asyncio.Event()
            tasks = [
                asyncio.create_task(worker("a", a, gate)),
                asyncio.create_task(worker("b", b, gate)),
            ]
            await asyncio.sleep(0)
            gate.set()
            await asyncio.gather(*tasks)
            return a, b

        a, b = asyncio.run(main())
        # Each task's spans landed only on its own observer.
        assert [(r.name, r.args) for r in a.tracer.events] == [("round", {"task": "a"})]
        assert [(r.name, r.args) for r in b.tracer.events] == [("round", {"task": "b"})]
        # Task-local activation never leaked into the calling thread.
        assert current_observer() is NULL_OBSERVER

    def test_trace_contexts_are_task_local(self):
        tracer = Tracer()

        async def tagged(index):
            ctx = root_context(seed=0, tenant="t", index=index)
            with tracer.span("op", ctx=ctx.child(f"site-{index}"), index=index):
                await asyncio.sleep(0)
            return ctx

        async def main():
            return await asyncio.gather(*(tagged(i) for i in range(4)))

        contexts = asyncio.run(main())
        by_index = {r.args["index"]: r for r in tracer.events}
        assert len(by_index) == 4
        for index, ctx in enumerate(contexts):
            record = by_index[index]
            assert record.trace_id == ctx.trace_id
            assert record.parent_id == ctx.span_id  # child of that task's root


class TestPromText:
    def test_parse_families_and_labels(self):
        text = (
            "# HELP reqs Requests seen.\n"
            "# TYPE reqs counter\n"
            'reqs{kind="read"} 2\n'
            'reqs{kind="write"} 1\n'
            "# TYPE depth gauge\n"
            "depth 4\n"
        )
        families = parse_metrics_text(text)
        assert set(families) == {"reqs", "depth"}
        assert families["reqs"].kind == "counter"
        assert families["reqs"].help == "Requests seen."
        assert [s.labels for s in families["reqs"].samples] == [
            (("kind", "read"),),
            (("kind", "write"),),
        ]
        assert families["depth"].samples[0].value == "4"

    def test_escaped_label_values_round_trip(self):
        value = 'quo"te\\slash\nnewline'
        text = f'# TYPE m counter\nm{{l="{escape_label_value(value)}"}} 1\n'
        families = parse_metrics_text(text)
        assert families["m"].samples[0].labels == (("l", value),)

    def test_histogram_samples_fold_into_their_family(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.5)
        families = parse_metrics_text(reg.render_text())
        assert set(families) == {"lat"}
        names = {s.name for s in families["lat"].samples}
        assert names == {"lat_bucket", "lat_sum", "lat_count"}

    def test_merge_tags_sources_and_emits_headers_once(self):
        a = "# HELP x Help.\n# TYPE x counter\nx 1\n"
        b = "# TYPE x counter\nx 2\n"
        merged = merge_metrics_text({"gateway": a, "0": b})
        assert merged.count("# TYPE x counter") == 1
        assert merged.count("# HELP x Help.") == 1
        assert 'x{worker="gateway"} 1' in merged
        assert 'x{worker="0"} 2' in merged
        assert validate_metrics_text(merged) == []

    def test_merge_orders_families_by_name(self):
        exposure = "# TYPE z counter\nz 1\n# TYPE a counter\na 1\n"
        merged = merge_metrics_text({"w": exposure})
        assert merged.index("# TYPE a counter") < merged.index("# TYPE z counter")

    def test_merge_source_label_prepends_to_existing_labels(self):
        exposure = '# TYPE x counter\nx{kind="read"} 1\n'
        merged = merge_metrics_text({"3": exposure}, label="worker")
        assert 'x{worker="3",kind="read"} 1' in merged

    def test_merge_rejects_kind_conflicts(self):
        with pytest.raises(ValueError):
            merge_metrics_text(
                {"a": "# TYPE x counter\nx 1\n", "b": "# TYPE x gauge\nx 2\n"}
            )

    def test_validate_catches_format_problems(self):
        assert validate_metrics_text("") == []
        assert validate_metrics_text("x 1\n") == [
            "family x: samples without a # TYPE header"
        ]
        dup = "# TYPE x counter\nx 1\nx 2\n"
        assert any("duplicate series" in p for p in validate_metrics_text(dup))
        assert any(
            "newline" in p for p in validate_metrics_text("# TYPE x counter\nx 1")
        )
        assert validate_metrics_text("# TYPE x counter\nx not-a-number\n")

    def test_validate_histogram_rules(self):
        not_cumulative = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\n'
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 3\n"
            "h_count 1\n"
        )
        assert any(
            "not cumulative" in p for p in validate_metrics_text(not_cumulative)
        )
        no_inf = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 1\n"
            "h_count 1\n"
        )
        assert any("+Inf" in p for p in validate_metrics_text(no_inf))

    def test_registry_render_is_sorted_and_valid(self):
        reg = MetricsRegistry()
        reg.counter("zeta_total", "Last.").inc()
        reg.gauge("alpha_depth", "First.").set(1)
        reg.histogram("mid_lat", "Middle.", buckets=(1.0,)).observe(0.5)
        text = reg.render_text()
        assert validate_metrics_text(text) == []
        assert list(parse_metrics_text(text)) == [
            "alpha_depth",
            "mid_lat",
            "zeta_total",
        ]


def _record(name, seq, **extra):
    """A span-record wire dict for merge tests."""
    base = {"name": name, "start_us": 10.0 * seq, "dur_us": 5.0, "depth": 0, "seq": seq}
    base.update(extra)
    return base


class TestDistributedMerge:
    def test_merge_assigns_lanes_and_metadata(self):
        gateway = ProcessTrace(
            name="gateway",
            events=[
                _record("gateway.submit", 0, trace_id="t1", span_id="g1"),
            ],
        )
        worker = ProcessTrace(
            name="worker-00",
            events=[
                _record(
                    "worker.admission", 0, trace_id="t1", span_id="w1", parent_id="g1"
                ),
            ],
            dropped=1,
        )
        doc = merge_chrome_traces([gateway, worker])
        lanes = {
            event["pid"]: event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert lanes == {1: "gateway", 2: "worker-00"}
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {1, 2}
        # Cross-lane parent/child identity rides in the args.
        by_name = {e["name"]: e["args"] for e in spans}
        assert by_name["worker.admission"]["parent_id"] == "g1"
        assert trace_summary(doc) == {
            "processes": ["gateway", "worker-00"],
            "lanes": 2,
            "spans": 2,
            "traces": 1,
            "dropped": 1,
        }

    def test_deterministic_merge_is_arrival_order_invariant(self):
        events = [
            _record("gateway.forward", 0, trace_id="t1", span_id="f1"),
            _record("gateway.forward", 1, trace_id="t1", span_id="f2"),
        ]
        one = merge_chrome_traces(
            [ProcessTrace("gateway", list(events))], deterministic=True
        )
        other = merge_chrome_traces(
            [ProcessTrace("gateway", list(reversed(events)))], deterministic=True
        )
        assert json.dumps(one, sort_keys=True) == json.dumps(other, sort_keys=True)
        spans = [e for e in one["traceEvents"] if e["ph"] == "X"]
        assert [e["ts"] for e in spans] == [0.0, 1.0]  # ordinal timestamps
        assert all(e["dur"] == 1.0 for e in spans)
        assert one["otherData"]["deterministic"] is True

    def _synthetic_doc(self):
        gateway = ProcessTrace(
            name="gateway",
            events=[
                _record(
                    "gateway.submit_batch", 0, dur_us=1000.0,
                    trace_id="tb", span_id="b1",
                ),
                _record(
                    "gateway.forward", 1, dur_us=800.0,
                    trace_id="tb", span_id="f1", parent_id="b1",
                ),
                _record(
                    "gateway.forward", 2, dur_us=600.0,
                    trace_id="tb", span_id="f2", parent_id="b1",
                ),
            ],
        )
        workers = [
            ProcessTrace(
                name="worker-00",
                events=[
                    _record(
                        "worker.submit_batch", 0, dur_us=500.0,
                        trace_id="tb", span_id="wb1", parent_id="f1",
                    ),
                    _record("worker.admission", 1, trace_id="t1", span_id="a1"),
                    _record("worker.admission", 2, trace_id="t2", span_id="a2"),
                ],
            ),
            ProcessTrace(
                name="worker-01",
                events=[
                    _record(
                        "worker.submit_batch", 0, dur_us=400.0,
                        trace_id="tb", span_id="wb2", parent_id="f2",
                    ),
                    _record("worker.admission", 1, trace_id="t3", span_id="a3"),
                ],
            ),
        ]
        return merge_chrome_traces([gateway] + workers)

    def test_analyze_trace_critical_path(self):
        analysis = analyze_trace(self._synthetic_doc())
        assert analysis["submissions"] == 3
        assert analysis["forward_spans"] == 2
        assert analysis["forward_spans_matched"] == 2
        categories = analysis["categories"]
        assert categories["gateway_batch"]["count"] == 1
        # Routing = batch time not spent waiting on the slowest worker.
        assert categories["gateway_routing"]["max_ms"] == pytest.approx(0.2)
        # Queue/transport = forward minus the matched worker-side span.
        assert categories["worker_queue"]["count"] == 2
        assert categories["worker_queue"]["max_ms"] == pytest.approx(0.3)
        assert categories["worker_admission"]["count"] == 3

    def test_render_trace_analysis_report(self):
        report = render_trace_analysis(analyze_trace(self._synthetic_doc()))
        assert "fan-out integrity: 2/2" in report
        assert "worker_queue" in report
        assert "p99_ms" in report

    def test_render_top_frame(self):
        metrics = {
            "gateway": {
                'gateway_submissions_total{outcome="admitted"}': 28.0,
                'gateway_submissions_total{outcome="rejected"}': 2.0,
            },
            "cluster": {"overload_degree": 0.25, "admitting": True},
            "partitions": {
                "0": {
                    "active_jobs": 3,
                    "queue_depth": 1,
                    "overload_degree": 0.2,
                    "admission_queue_depth": 0,
                    "jobs_submitted": 15,
                },
                "1": {"error": "worker down"},
            },
        }
        workers = [{"partition": 0, "alive": True, "rtt_ms": 0.5, "restarts": 0}]
        frame = render_top(metrics, workers)
        assert "workers: 2" in frame
        assert "submitted: 30" in frame
        assert "door: open" in frame
        assert "DOWN" in frame  # the erroring partition renders as down
