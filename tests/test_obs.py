"""Tests for the observability layer (metrics, tracing, timelines).

Covers the registry (Prometheus rendering, label children, pickling),
the tracer (span nesting, the disabled no-op path, Chrome-trace
round-tripping), per-job timelines, and the engine integration: phase
spans per scheduler, trace files written by ``SimulationEngine(trace=)``
and the zero-cost NULL_OBSERVER default.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.cluster import Cluster
from repro.core import make_mlf_h, make_mlfs
from repro.core.state import FEATURE_SIZE
from repro.obs import (
    NULL_OBSERVER,
    MetricsRegistry,
    NullTracer,
    Observer,
    SCHEDULER_PHASES,
    TimelineEvent,
    TimelineRecorder,
    Tracer,
    current_observer,
    set_current_observer,
    span,
)
from repro.rl.policy import ScoringPolicy
from repro.sim import EngineConfig, SimulationEngine
from repro.workload import build_jobs, generate_trace

WEEK = 7 * 24 * 3600.0


def small_engine(scheduler=None, num_jobs=12, servers=4, seed=21, **engine_kwargs):
    records = generate_trace(num_jobs, duration_seconds=1800.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(servers, 4)
    return SimulationEngine(
        scheduler or make_mlf_h(),
        jobs,
        cluster,
        EngineConfig(max_time=WEEK),
        **engine_kwargs,
    )


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c", "a counter").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(4.5)
        reg.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        reg.histogram("h").observe(100.0)
        snap = reg.scalar_snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 4.5
        assert snap["h_count"] == 2
        assert snap["h_sum"] == 100.5

    def test_labelled_children(self):
        reg = MetricsRegistry()
        family = reg.counter("ops", "by kind", labels=("kind",))
        family.labels("read").inc()
        family.labels("read").inc()
        family.labels("write").inc()
        snap = reg.scalar_snapshot()
        assert snap['ops{kind="read"}'] == 2
        assert snap['ops{kind="write"}'] == 1
        with pytest.raises(ValueError):
            family.labels()  # label count mismatch

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_render_text_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "Jobs seen.").inc(5)
        hist = reg.histogram("lat", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = reg.render_text()
        assert "# HELP jobs_total Jobs seen." in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 5" in text
        # Buckets are cumulative and end with +Inf = count.
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum" in text
        assert "lat_count 3" in text
        assert text.endswith("\n")

    def test_registry_pickles(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.histogram("h", labels=("p",)).labels("x").observe(0.2)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.scalar_snapshot() == reg.scalar_snapshot()
        clone.counter("c").inc()  # still usable after restore
        assert clone.scalar_snapshot()["c"] == 8


class TestTracer:
    def test_spans_nest(self):
        obs = Observer(tracer=Tracer())
        with obs.span("round"):
            with obs.span("priority"):
                pass
            with obs.span("placement"):
                with obs.span("rl_inference"):
                    pass
        by_name = {r.name: r for r in obs.tracer.events}
        assert by_name["round"].depth == 0
        assert by_name["priority"].depth == 1
        assert by_name["placement"].depth == 1
        assert by_name["rl_inference"].depth == 2
        # Children close before parents: the round span is last.
        assert obs.tracer.events[-1].name == "round"
        # The parent's interval contains the children's.
        rnd = by_name["round"]
        for child in ("priority", "placement", "rl_inference"):
            rec = by_name[child]
            assert rec.start_us >= rnd.start_us
            assert rec.start_us + rec.dur_us <= rnd.start_us + rnd.dur_us + 1.0

    def test_disabled_tracer_records_nothing(self):
        obs = Observer(tracer=NullTracer())
        with obs.span("round"):
            with obs.span("priority"):
                pass
        assert len(obs.tracer) == 0
        assert obs.tracer.chrome_events() == []
        # The phase histogram still observes (metrics stay on).
        assert obs.registry.scalar_snapshot()[
            'mlfs_scheduler_phase_seconds_count{phase="round"}'
        ] == 1

    def test_chrome_trace_round_trips(self, tmp_path):
        obs = Observer(tracer=Tracer())
        with obs.span("round", round=3):
            with obs.span("priority", jobs=7):
                pass
        path = obs.tracer.write(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["name"] in ("round", "priority")
        args = {e["name"]: e.get("args") for e in events}
        assert args["priority"] == {"jobs": 7}

    def test_max_events_cap(self):
        tracer = Tracer(max_events=2)
        obs = Observer(tracer=tracer)
        for _ in range(5):
            with obs.span("round"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.to_chrome_trace()["otherData"]["dropped_spans"] == 3


class TestTimelineRecorder:
    def test_record_and_history(self):
        recorder = TimelineRecorder()
        recorder.record("j1", TimelineEvent(time=1.0, event="submitted"))
        recorder.record(
            "j1",
            TimelineEvent(
                time=2.0, event="placed", task_id="t0", server_id=3, priority=0.5
            ),
        )
        history = recorder.history("j1")
        assert [e["event"] for e in history] == ["submitted", "placed"]
        assert history[1]["server_id"] == 3
        assert history[1]["priority"] == 0.5
        assert "gpu_id" not in history[1]  # Nones dropped
        assert recorder.history("missing") == []

    def test_capped_at_max_jobs(self):
        recorder = TimelineRecorder(max_jobs=2)
        for index in range(4):
            recorder.record(f"j{index}", TimelineEvent(time=float(index), event="submitted"))
        assert len(recorder) == 2
        assert recorder.job_ids() == ["j2", "j3"]
        assert "j0" not in recorder


class TestObserverRouting:
    def test_defaults_to_null_observer(self):
        assert current_observer() is NULL_OBSERVER
        # Module-level spans are no-ops with no active observer.
        with span("priority"):
            pass

    def test_activation_routes_and_restores(self):
        obs = Observer(tracer=Tracer())
        previous = set_current_observer(obs)
        try:
            assert current_observer() is obs
            with span("priority"):
                pass
        finally:
            set_current_observer(previous)
        assert current_observer() is NULL_OBSERVER
        assert [r.name for r in obs.tracer.events] == ["priority"]

    def test_observer_pickles_with_counts(self):
        obs = Observer(tracer=Tracer())
        obs.job_event("j1", "placed", 1.0, task_id="t0", server_id=0)
        obs.job_event("j1", "completed", 5.0, jct=4.0)
        with obs.span("round"):
            pass
        clone = pickle.loads(pickle.dumps(obs))
        snap = clone.registry.scalar_snapshot()
        assert snap["mlfs_task_placements_total"] == 1
        assert snap["mlfs_job_completions_total"] == 1
        assert clone.timeline.history("j1")[-1]["jct"] == 4.0
        # Re-registered family handles keep feeding the same registry.
        clone.job_event("j2", "placed", 6.0)
        assert clone.registry.scalar_snapshot()["mlfs_task_placements_total"] == 2


class TestEngineIntegration:
    def test_default_observer_is_null(self):
        engine = small_engine()
        assert engine.obs is NULL_OBSERVER
        engine.run()  # no observability cost, no errors

    def test_trace_file_written_with_phases(self, tmp_path):
        path = tmp_path / "mlfh.json"
        engine = small_engine(trace=path)
        engine.run()
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        # MLF-H emits the heuristic phases each round.
        assert {"round", "priority", "migration", "placement"} <= names

    def test_mlfs_rl_phase_emits_all_five_spans(self, tmp_path):
        path = tmp_path / "mlfs.json"
        scheduler = make_mlfs(policy=ScoringPolicy(feature_size=FEATURE_SIZE, seed=7))
        engine = small_engine(scheduler=scheduler, trace=path)
        engine.run()
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert set(SCHEDULER_PHASES) <= names

    def test_job_timelines_and_counters(self):
        obs = Observer()
        engine = small_engine(observer=obs)
        engine.run()
        snap = obs.registry.scalar_snapshot()
        assert snap["mlfs_job_arrivals_total"] == 12
        assert snap["mlfs_job_completions_total"] == 12
        assert snap["mlfs_task_placements_total"] >= 12
        assert snap["mlfs_rounds_total"] > 0
        assert len(obs.timeline) == 12
        for job_id in obs.timeline.job_ids():
            events = [e["event"] for e in obs.timeline.history(job_id)]
            assert events[0] == "submitted"
            assert events[1] == "queued"
            assert "placed" in events
            assert events[-1] in ("completed", "stopped")
        # Per-phase latency histograms populate from the same spans.
        assert snap['mlfs_scheduler_phase_seconds_count{phase="priority"}'] > 0

    def test_observed_run_matches_unobserved(self):
        """Instrumentation must not perturb the schedule."""
        plain = small_engine(seed=29)
        plain.run()
        observed = small_engine(seed=29, observer=Observer(tracer=Tracer()))
        observed.run()
        plain_out = sorted(
            (r.job_id, r.jct, r.iterations_completed)
            for r in plain.metrics.job_records
        )
        observed_out = sorted(
            (r.job_id, r.jct, r.iterations_completed)
            for r in observed.metrics.job_records
        )
        assert plain_out == observed_out
