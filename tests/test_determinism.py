"""Determinism regression: two same-seed runs are bit-identical.

This is the contract the lint (no wall clock, no global RNG) and the
sanitizer (snapshot round-trips exactly) exist to protect.  Both runs
execute with the sanitizer enabled, so every round is also audited for
resource conservation, queue consistency and priority-ordered dequeue.
"""

from __future__ import annotations

import json

from repro.cluster import Cluster
from repro.core import make_mlf_h
from repro.service.telemetry import RunningJctStats, round_record
from repro.sim import EngineConfig, SimulationEngine
from repro.workload import build_jobs, generate_trace


def run_once(seed: int) -> tuple[list[str], list, list]:
    """One sanitized MLF-H run; returns (telemetry lines, rounds, JCTs)."""
    records = generate_trace(8, duration_seconds=3600.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(4, 4)
    engine = SimulationEngine(
        make_mlf_h(),
        jobs,
        cluster,
        EngineConfig(seed=seed, max_time=14 * 24 * 3600.0),
        sanitize=True,
    )
    engine.start()
    stats = RunningJctStats()
    lines: list[str] = []
    rounds = []
    while True:
        result = engine.advance()
        rounds.append(result)
        record = round_record(result, engine.metrics, jct_stats=stats)
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        if result.drained or result.events_processed == 0:
            break
    metrics = engine.finalize()
    jcts = [(r.job_id, r.jct, r.iterations_completed) for r in metrics.job_records]
    assert engine.sanitizer.rounds_checked > 0
    assert engine.sanitizer.violations_raised == 0
    return lines, rounds, jcts


class TestSameSeedBitIdentical:
    def test_telemetry_and_rounds_identical(self):
        lines_a, rounds_a, jcts_a = run_once(seed=17)
        lines_b, rounds_b, jcts_b = run_once(seed=17)
        # Bit-identical telemetry JSONL, round for round.
        assert lines_a == lines_b
        # RoundResult dataclasses compare field-wise.
        assert rounds_a == rounds_b
        assert jcts_a == jcts_b

    def test_different_seeds_diverge(self):
        # Guards against the comparison being vacuous (e.g. both runs
        # producing empty telemetry).
        lines_a, _rounds_a, _ = run_once(seed=17)
        lines_c, _rounds_c, _ = run_once(seed=23)
        assert lines_a
        assert lines_a != lines_c
