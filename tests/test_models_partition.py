"""Unit tests for the model zoo and the model-parallel partitioner."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload import (
    MODEL_NAMES,
    MODEL_ZOO,
    PartitionStyle,
    get_model,
    partition_model,
)


class TestModelZoo:
    def test_all_five_models_present(self):
        assert set(MODEL_NAMES) == {"alexnet", "resnet", "mlp", "lstm", "svm"}

    def test_get_model_roundtrip(self):
        for name in MODEL_NAMES:
            assert get_model(name).name == name

    def test_get_model_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model("bert")

    def test_partition_styles_match_paper(self):
        assert get_model("alexnet").partition_style is PartitionStyle.SEQUENTIAL
        assert get_model("mlp").partition_style is PartitionStyle.SEQUENTIAL
        assert get_model("resnet").partition_style is PartitionStyle.LAYERED
        assert get_model("lstm").partition_style is PartitionStyle.LAYERED
        assert get_model("svm").partition_style is PartitionStyle.NONE

    def test_alexnet_parameter_count(self):
        # Canonical AlexNet is ~61M parameters.
        assert get_model("alexnet").total_params_m == pytest.approx(62.38, rel=0.05)

    def test_resnet_parameter_count(self):
        # ResNet-50 is ~25.5M parameters.
        assert get_model("resnet").total_params_m == pytest.approx(25.5, rel=0.1)

    def test_batch_sizes_match_paper(self):
        # "The batch size is 1MB for AlexNet and ResNet, and 1.5KB for
        # LSTM, MLP and SVM" (Section 4.1).
        assert get_model("alexnet").batch_size_mb == 1.0
        assert get_model("resnet").batch_size_mb == 1.0
        for name in ("lstm", "mlp", "svm"):
            assert get_model(name).batch_size_mb == pytest.approx(0.0015)

    def test_loss_curve_monotone_decreasing(self):
        for profile in MODEL_ZOO.values():
            prev = None
            for i in range(0, 50):
                loss = profile.loss_floor + (
                    profile.loss_initial - profile.loss_floor
                ) * (1.0 + i) ** (-profile.loss_decay)
                if prev is not None:
                    assert loss < prev
                prev = loss

    def test_model_state_mb_positive(self):
        for profile in MODEL_ZOO.values():
            assert profile.model_state_mb > 0
            assert profile.model_state_mb == pytest.approx(
                profile.total_params_m * 4.0
            )

    def test_comm_rounds_positive(self):
        for profile in MODEL_ZOO.values():
            assert profile.comm_rounds_per_iteration >= 1


class TestPartitioner:
    def test_single_partition_is_whole_model(self):
        profile = get_model("alexnet")
        parts = partition_model(profile, 1)
        assert len(parts) == 1
        assert parts[0].params_m == pytest.approx(profile.total_params_m)
        assert parts[0].compute_fraction == pytest.approx(1.0)

    def test_svm_never_partitions(self):
        parts = partition_model(get_model("svm"), 8)
        assert len(parts) == 1

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            partition_model(get_model("mlp"), 0)

    def test_sequential_preserves_params(self):
        profile = get_model("alexnet")
        for count in (2, 3, 4, 8):
            parts = partition_model(profile, count)
            total = sum(p.params_m for p in parts)
            assert total == pytest.approx(profile.total_params_m)

    def test_sequential_chain_dependencies(self):
        parts = partition_model(get_model("alexnet"), 4)
        assert not parts[0].depends_on_previous
        assert all(p.depends_on_previous for p in parts[1:])

    def test_sequential_degrades_to_layer_count(self):
        profile = get_model("mlp")  # 4 layers
        parts = partition_model(profile, 32)
        assert len(parts) <= profile.num_layers

    def test_layered_parts_are_equal_and_parallel(self):
        profile = get_model("resnet")
        parts = partition_model(profile, 4)
        assert len(parts) == 4
        assert all(not p.depends_on_previous for p in parts)
        assert all(
            p.params_m == pytest.approx(profile.total_params_m / 4) for p in parts
        )

    def test_layered_compute_fractions_sum_to_one(self):
        parts = partition_model(get_model("lstm"), 8)
        assert sum(p.compute_fraction for p in parts) == pytest.approx(1.0)

    def test_indexes_are_sequential(self):
        parts = partition_model(get_model("resnet"), 5)
        assert [p.index for p in parts] == list(range(5))

    @given(st.sampled_from(MODEL_NAMES), st.integers(min_value=1, max_value=32))
    def test_partition_invariants(self, name, count):
        profile = get_model(name)
        parts = partition_model(profile, count)
        assert 1 <= len(parts) <= max(count, 1)
        assert sum(p.params_m for p in parts) == pytest.approx(
            profile.total_params_m, rel=1e-6
        )
        assert sum(p.compute_fraction for p in parts) == pytest.approx(1.0, rel=1e-6)
        assert all(p.params_m > 0 for p in parts)
