"""Unit tests for the NumPy RL substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl import (
    Adam,
    Decision,
    ImitationBuffer,
    ImitationTrainer,
    MLP,
    ReinforceTrainer,
    RewardBaseline,
    SGD,
    ScoringPolicy,
    Trajectory,
    clip_gradients,
    relu,
    relu_grad,
    softmax,
)


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(relu(x), [0.0, 0.0, 2.0])
        assert np.allclose(relu_grad(x), [0.0, 0.0, 1.0])

    def test_softmax_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs[2] > probs[1] > probs[0]

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([1000.0, 1000.0]))
        assert np.allclose(probs, [0.5, 0.5])


class TestMLP:
    def test_shapes(self):
        net = MLP([4, 8, 2], seed=0)
        out = net.forward(np.zeros((3, 4)))
        assert out.shape == (3, 2)
        assert net.input_size == 4 and net.output_size == 2

    def test_rejects_too_few_layers(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_deterministic_init(self):
        a, b = MLP([3, 5, 1], seed=42), MLP([3, 5, 1], seed=42)
        assert all(np.array_equal(x, y) for x, y in zip(a.weights, b.weights))

    def test_backward_requires_forward(self):
        net = MLP([2, 2], seed=0)
        with pytest.raises(RuntimeError):
            net.backward(np.zeros((1, 2)))

    def test_gradient_check_finite_difference(self):
        net = MLP([3, 4, 1], seed=1)
        x = np.random.default_rng(0).normal(size=(2, 3))
        out = net.forward(x)
        loss_grad = np.ones_like(out)
        grads = net.backward(loss_grad)
        eps = 1e-6
        w = net.weights[0]
        numeric = np.zeros_like(w)
        for i in range(w.shape[0]):
            for j in range(w.shape[1]):
                w[i, j] += eps
                up = net.predict(x).sum()
                w[i, j] -= 2 * eps
                down = net.predict(x).sum()
                w[i, j] += eps
                numeric[i, j] = (up - down) / (2 * eps)
        assert np.allclose(grads[0][0], numeric, atol=1e-4)

    def test_state_dict_roundtrip(self):
        net = MLP([3, 4, 1], seed=1)
        state = net.state_dict()
        other = MLP([3, 4, 1], seed=99)
        other.load_state_dict(state)
        x = np.ones((1, 3))
        assert np.allclose(net.predict(x), other.predict(x))

    def test_predict_matches_forward(self):
        net = MLP([3, 4, 1], seed=1)
        x = np.random.default_rng(1).normal(size=(5, 3))
        assert np.allclose(net.forward(x), net.predict(x))


class TestOptimizers:
    def _loss_after_steps(self, optimizer, steps=200):
        net = MLP([2, 8, 1], seed=3)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 2))
        y = (x[:, :1] * 2.0 - x[:, 1:] * 0.5) + 1.0
        for _ in range(steps):
            pred = net.forward(x)
            grad = 2.0 * (pred - y) / len(x)
            optimizer.step(net, net.backward(grad))
        return float(np.mean((net.predict(x) - y) ** 2))

    def test_sgd_reduces_loss(self):
        assert self._loss_after_steps(SGD(learning_rate=1e-2)) < 0.1

    def test_adam_reduces_loss(self):
        assert self._loss_after_steps(Adam(learning_rate=1e-2)) < 0.05

    def test_momentum_sgd(self):
        assert self._loss_after_steps(SGD(learning_rate=5e-3, momentum=0.9)) < 0.1

    def test_clip_gradients_norm(self):
        grads = [(np.full((2, 2), 10.0), np.full(2, 10.0))]
        clipped = clip_gradients(grads, max_norm=1.0)
        total = np.sqrt(
            sum(float(np.sum(g * g)) + float(np.sum(b * b)) for g, b in clipped)
        )
        assert total == pytest.approx(1.0)

    def test_clip_noop_when_small(self):
        grads = [(np.full((2, 2), 0.01), np.zeros(2))]
        clipped = clip_gradients(grads, max_norm=10.0)
        assert np.allclose(clipped[0][0], grads[0][0])


class TestScoringPolicy:
    def test_probabilities_valid(self):
        policy = ScoringPolicy(feature_size=5, seed=0)
        features = np.random.default_rng(0).normal(size=(7, 5))
        probs = policy.probabilities(features)
        assert probs.shape == (7,)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_feature_size_enforced(self):
        policy = ScoringPolicy(feature_size=5, seed=0)
        with pytest.raises(ValueError):
            policy.scores(np.zeros((2, 3)))

    def test_greedy_choose_is_argmax(self):
        policy = ScoringPolicy(feature_size=4, seed=1)
        features = np.random.default_rng(1).normal(size=(6, 4))
        choice = policy.choose(features, greedy=True)
        assert choice.index == int(np.argmax(policy.probabilities(features)))
        assert choice.log_prob <= 0.0

    def test_sampling_deterministic_per_seed(self):
        features = np.random.default_rng(2).normal(size=(5, 4))
        a = ScoringPolicy(feature_size=4, seed=9).choose(features, greedy=False)
        b = ScoringPolicy(feature_size=4, seed=9).choose(features, greedy=False)
        assert a.index == b.index

    def test_imitation_learns_simple_rule(self):
        # Expert always picks the candidate with the largest first feature.
        rng = np.random.default_rng(3)
        policy = ScoringPolicy(feature_size=3, hidden_sizes=(16,), seed=2)
        optimizer = Adam(learning_rate=5e-3)
        for _ in range(400):
            features = rng.normal(size=(4, 3))
            expert = int(np.argmax(features[:, 0]))
            policy.imitation_step(features, expert, optimizer)
        hits = 0
        for _ in range(100):
            features = rng.normal(size=(4, 3))
            expert = int(np.argmax(features[:, 0]))
            hits += int(policy.choose(features).index == expert)
        assert hits >= 85

    def test_policy_gradient_shifts_probability(self):
        policy = ScoringPolicy(feature_size=3, seed=4)
        optimizer = Adam(learning_rate=1e-2)
        features = np.random.default_rng(4).normal(size=(3, 3))
        before = policy.probabilities(features)[1]
        for _ in range(50):
            policy.policy_gradient_step(features, 1, advantage=1.0, optimizer=optimizer)
        after = policy.probabilities(features)[1]
        assert after > before

    def test_negative_advantage_reduces_probability(self):
        policy = ScoringPolicy(feature_size=3, seed=5)
        optimizer = Adam(learning_rate=1e-2)
        features = np.random.default_rng(5).normal(size=(3, 3))
        before = policy.probabilities(features)[0]
        for _ in range(50):
            policy.policy_gradient_step(features, 0, advantage=-1.0, optimizer=optimizer)
        assert policy.probabilities(features)[0] < before

    def test_expert_agreement_empty(self):
        policy = ScoringPolicy(feature_size=3, seed=6)
        assert policy.expert_agreement([]) == 0.0


class TestReplay:
    def test_imitation_buffer_capacity(self):
        buffer = ImitationBuffer(capacity=10, seed=0)
        for i in range(100):
            buffer.add(Decision(features=np.zeros((2, 3)), chosen_index=i % 2))
        assert len(buffer) == 10

    def test_buffer_sample(self):
        buffer = ImitationBuffer(capacity=50, seed=0)
        for i in range(20):
            buffer.add(Decision(features=np.zeros((2, 3)), chosen_index=0))
        assert len(buffer.sample(5)) == 5
        assert len(buffer.sample(100)) == 20

    def test_trajectory_discounted_returns(self):
        trajectory = Trajectory()
        for reward in (0.0, 0.0, 1.0):
            trajectory.add_step(
                Decision(features=np.zeros((1, 2)), chosen_index=0), reward
            )
        returns = trajectory.discounted_returns(0.5)
        assert returns == pytest.approx([0.25, 0.5, 1.0])

    def test_baseline_update(self):
        baseline = RewardBaseline(decay=0.5)
        assert baseline.value == 0.0
        advantage = baseline.update(10.0)
        assert advantage == pytest.approx(10.0)
        assert baseline.value == pytest.approx(10.0)
        advantage = baseline.update(20.0)
        assert advantage == pytest.approx(10.0)
        assert baseline.value == pytest.approx(15.0)


class TestTrainers:
    def _expert_buffer(self, n=300, seed=0):
        rng = np.random.default_rng(seed)
        buffer = ImitationBuffer(capacity=n, seed=seed)
        for _ in range(n):
            features = rng.normal(size=(4, 3))
            buffer.add(
                Decision(features=features, chosen_index=int(np.argmax(features[:, 0])))
            )
        return buffer

    def test_imitation_trainer_converges(self):
        buffer = self._expert_buffer()
        policy = ScoringPolicy(feature_size=3, hidden_sizes=(16,), seed=1)
        trainer = ImitationTrainer(policy=policy, learning_rate=5e-3)
        stats = trainer.train(buffer, epochs=6)
        assert stats["agreement"] > 0.8

    def test_imitation_trainer_empty_buffer(self):
        policy = ScoringPolicy(feature_size=3, seed=1)
        stats = ImitationTrainer(policy=policy).train(ImitationBuffer())
        assert stats == {"epochs": 0.0, "loss": 0.0, "agreement": 0.0}

    def test_reinforce_on_bandit(self):
        # One-step bandit: candidate 0 pays 1, candidate 1 pays 0.
        policy = ScoringPolicy(feature_size=2, hidden_sizes=(8,), seed=2)
        trainer = ReinforceTrainer(policy=policy, learning_rate=5e-3, discount=0.9)
        features = np.array([[1.0, 0.0], [0.0, 1.0]])

        def run_episode(p):
            trajectory = Trajectory()
            choice = p.choose(features, greedy=False)
            reward = 1.0 if choice.index == 0 else 0.0
            trajectory.add_step(
                Decision(features=features, chosen_index=choice.index), reward
            )
            return trajectory

        trainer.train_episodes(run_episode, episodes=150)
        assert policy.choose(features, greedy=True).index == 0

    def test_reinforce_empty_trajectory(self):
        policy = ScoringPolicy(feature_size=2, seed=3)
        trainer = ReinforceTrainer(policy=policy)
        assert trainer.train_on_trajectory(Trajectory())["steps"] == 0.0

    @given(st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_returns_bounded_by_total_reward(self, discount):
        trajectory = Trajectory()
        for reward in (1.0, 1.0, 1.0):
            trajectory.add_step(
                Decision(features=np.zeros((1, 2)), chosen_index=0), reward
            )
        returns = trajectory.discounted_returns(discount)
        assert all(r <= 3.0 + 1e-9 for r in returns)
        assert returns[0] >= returns[-1] or discount == 1.0
