"""Unit tests for the communication and iteration-execution models."""

import pytest

from repro.cluster import Cluster
from repro.sim import (
    ExecutionModel,
    iteration_comm,
    job_links,
    migration_volume_mb,
    pairwise_cross_volume,
)
from tests.conftest import make_job


def place_all(job, cluster, spread=False):
    """Place every task of a job on server 0, or round-robin if spread."""
    for i, task in enumerate(job.tasks):
        server = cluster.server(i % len(cluster.servers) if spread else 0)
        gpu = server.place_task(task)
        task.mark_placed(0.0, server.server_id, gpu.gpu_id)


class TestLinks:
    def test_links_cover_dag_and_sync(self, simple_job):
        links = job_links(simple_job)
        expected = simple_job.dag.number_of_edges() + len(simple_job.sync_links)
        assert len(links) == expected

    def test_link_volumes_positive(self, simple_job):
        assert all(l.volume_mb > 0 for l in job_links(simple_job))


class TestIterationComm:
    def test_colocated_job_has_zero_cost(self, small_cluster):
        job = make_job(seed=21)
        place_all(job, small_cluster, spread=False)
        comm = iteration_comm(job, small_cluster)
        assert comm.cross_server_mb == 0.0
        assert comm.seconds == 0.0

    def test_spread_job_pays_bandwidth(self, small_cluster):
        job = make_job(seed=21, gpus=8)
        place_all(job, small_cluster, spread=True)
        comm = iteration_comm(job, small_cluster)
        assert comm.cross_server_mb > 0.0
        assert comm.seconds > 0.0

    def test_comm_scales_with_rounds(self, small_cluster):
        job = make_job(seed=21, gpus=8)
        place_all(job, small_cluster, spread=True)
        comm = iteration_comm(job, small_cluster)
        raw = sum(
            l.volume_mb
            for l in job_links(job)
            if l.src.server_id != l.dst.server_id
        )
        assert comm.cross_server_mb == pytest.approx(
            raw * job.model.comm_rounds_per_iteration
        )

    def test_unplaced_task_raises(self, small_cluster):
        job = make_job(seed=21)
        with pytest.raises(ValueError):
            iteration_comm(job, small_cluster)

    def test_migration_volume_reflects_partition(self, simple_job):
        workers = [t for t in simple_job.tasks if not t.is_parameter_server]
        volume = migration_volume_mb(workers[0])
        assert volume == pytest.approx(workers[0].partition_params_m * 4.0 + 8.0)

    def test_pairwise_cross_volume(self, small_cluster):
        job = make_job(seed=22, gpus=4)
        place_all(job, small_cluster, spread=True)
        task = job.tasks[0]
        same = pairwise_cross_volume(job, task, task.server_id)
        other = pairwise_cross_volume(job, task, 99)
        assert other >= same


class TestExecutionModel:
    def test_iteration_duration_includes_compute(self, small_cluster):
        model = ExecutionModel()
        job = make_job(seed=23)
        place_all(job, small_cluster)
        duration, cross = model.iteration_duration(job, small_cluster)
        assert duration > 0.0
        assert cross == 0.0  # co-located

    def test_contention_slows_iterations(self):
        model = ExecutionModel()
        cluster_a, cluster_b = Cluster.build(4, 4), Cluster.build(4, 4)
        job_a = make_job(seed=24)
        place_all(job_a, cluster_a)
        alone, _ = model.iteration_duration(job_a, cluster_a)

        # Same job under co-located contention from two other jobs.
        model_b = ExecutionModel()
        job_b = make_job(seed=24)
        for seed in (31, 32, 33):
            other = make_job(seed=seed, job_id=f"noise{seed}")
            place_all(other, cluster_b)
        place_all(job_b, cluster_b)
        contended, _ = model_b.iteration_duration(job_b, cluster_b)
        assert contended >= alone

    def test_slowdown_at_least_one(self, small_cluster):
        model = ExecutionModel()
        job = make_job(seed=25)
        place_all(job, small_cluster)
        for task in job.tasks:
            assert model.task_slowdown(task, small_cluster) >= 1.0

    def test_unplaced_slowdown_raises(self, small_cluster):
        model = ExecutionModel()
        job = make_job(seed=25)
        with pytest.raises(ValueError):
            model.task_slowdown(job.tasks[0], small_cluster)

    def test_critical_path_at_least_max_task(self, small_cluster):
        model = ExecutionModel()
        job = make_job(seed=26)
        place_all(job, small_cluster)
        path = model.compute_critical_path(job, small_cluster)
        longest_task = max(t.compute_seconds for t in job.tasks)
        assert path >= longest_task - 1e-9

    def test_straggler_injection(self, small_cluster):
        model = ExecutionModel(straggler_probability=1.0, straggler_slowdown=3.0)
        clean = ExecutionModel()
        job = make_job(seed=27)
        place_all(job, small_cluster)
        slow, _ = model.iteration_duration(job, small_cluster, straggler_draw=0.5)
        fast, _ = clean.iteration_duration(job, small_cluster, straggler_draw=0.5)
        assert slow == pytest.approx(3.0 * fast)

    def test_caches_forgotten(self, small_cluster):
        model = ExecutionModel()
        job = make_job(seed=28)
        place_all(job, small_cluster)
        model.iteration_duration(job, small_cluster)
        assert job.job_id in model._topo_cache
        model.forget(job)
        assert job.job_id not in model._topo_cache
        assert job.job_id not in model._links_cache
