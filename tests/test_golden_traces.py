"""Golden-trace regression suite: telemetry must not drift, bit for bit.

Each scenario replays a small, fully seeded simulation and serializes
every per-round telemetry record exactly as the daemon would write it
(``json.dumps(..., sort_keys=True, separators=(",", ":"))``).  The
lines are diffed against the checked-in golden file under
``tests/golden/`` — any divergence (a changed field, a reordered
round, a float that moved in the 15th digit) fails the test and names
the first differing round.

When a change is *supposed* to alter the schedule (a new scheduler
phase, a fault-model change), regenerate the files and review the diff
like any other code change::

    pytest tests/test_golden_traces.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.baselines import GandivaScheduler, SLAQScheduler, TiresiasScheduler
from repro.cluster import Cluster
from repro.core import make_mlf_h, make_mlf_rl
from repro.core.state import FEATURE_SIZE
from repro.faults import FaultEvent, FaultPlan
from repro.rl.policy import ScoringPolicy
from repro.service.telemetry import RunningJctStats, round_record
from repro.sim import EngineConfig, SimulationEngine
from repro.workload import build_jobs, generate_trace

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The fault scenario's plan: a crash + revive and a straggler phase
#: over the busy part of the run, with checkpoint-restart every 3
#: iterations.
FAULT_PLAN = FaultPlan(
    events=(
        FaultEvent(round_index=6, kind="server_crash", server_id=0),
        FaultEvent(round_index=9, kind="straggler_start", server_id=2, slowdown=2.5),
        FaultEvent(round_index=12, kind="server_revive", server_id=0),
        FaultEvent(round_index=15, kind="straggler_end", server_id=2),
        FaultEvent(round_index=18, kind="gpu_fail", server_id=1, gpu_id=0),
        FaultEvent(round_index=22, kind="gpu_revive", server_id=1, gpu_id=0),
    ),
    checkpoint_period=3,
)


def _mlf_rl_policy() -> ScoringPolicy:
    """A seeded scoring policy — deterministic without pretraining."""
    return ScoringPolicy(feature_size=FEATURE_SIZE, seed=7)


#: scenario name -> (scheduler factory, fault plan or None)
SCENARIOS = {
    "mlf_h": (make_mlf_h, None),
    "mlf_rl": (lambda: make_mlf_rl(policy=_mlf_rl_policy()), None),
    "mlf_h_faults": (make_mlf_h, FAULT_PLAN),
    # The event-parkable baselines (PR 10): their clocked state —
    # Tiresias' attained-service stints, Gandiva's slice rotation,
    # SLAQ's quality EWMA and epoch — is pinned here the same way the
    # MLF suite is.
    "tiresias": (TiresiasScheduler, None),
    "gandiva": (GandivaScheduler, None),
    "slaq": (SLAQScheduler, None),
}


def trace_scenario(name: str) -> list[str]:
    """Run one scenario; return its telemetry JSONL lines."""
    factory, plan = SCENARIOS[name]
    records = generate_trace(10, duration_seconds=3600.0, seed=29)
    jobs = build_jobs(records, seed=30)
    engine = SimulationEngine(
        factory(),
        jobs,
        Cluster.build(4, 4),
        EngineConfig(seed=31, max_time=14 * 24 * 3600.0),
        sanitize=True,
        faults=plan,
    )
    engine.start()
    stats = RunningJctStats()
    lines: list[str] = []
    while True:
        result = engine.advance()
        record = round_record(result, engine.metrics, jct_stats=stats)
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        if result.drained or result.events_processed == 0:
            break
    engine.finalize()
    assert engine.sanitizer.violations_raised == 0
    return lines


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.jsonl"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name, update_golden):
    lines = trace_scenario(name)
    assert lines, f"scenario {name} produced no telemetry"
    path = golden_path(name)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        pytest.skip(f"golden file {path.name} regenerated")
    assert path.exists(), (
        f"missing golden file {path}; generate it with"
        " `pytest tests/test_golden_traces.py --update-golden`"
    )
    golden = path.read_text(encoding="utf-8").splitlines()
    if lines != golden:
        limit = min(len(lines), len(golden))
        for index in range(limit):
            assert lines[index] == golden[index], (
                f"scenario {name} diverges from {path.name} at round {index}:\n"
                f"  golden : {golden[index]}\n"
                f"  current: {lines[index]}"
            )
        pytest.fail(
            f"scenario {name}: round count changed"
            f" ({len(golden)} golden vs {len(lines)} current)"
        )


def test_fault_scenario_actually_faults(update_golden):
    """Guard: the fault golden trace is not silently fault-free."""
    records = [json.loads(line) for line in trace_scenario("mlf_h_faults")]
    assert sum(r["faults"] for r in records) > 0
    assert sum(r["tasks_killed"] for r in records) > 0
