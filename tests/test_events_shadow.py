"""Unit tests for the event queue and shadow-cluster accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ResourceVector
from repro.sim import Event, EventKind, EventQueue
from repro.sim.shadow import ShadowCluster
from tests.conftest import make_job


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(Event(5.0, EventKind.SCHEDULE_TICK))
        queue.push(Event(1.0, EventKind.SCHEDULE_TICK))
        queue.push(Event(3.0, EventKind.SCHEDULE_TICK))
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        queue.push(Event(1.0, EventKind.JOB_ARRIVAL, "first"))
        queue.push(Event(1.0, EventKind.SCHEDULE_TICK, "second"))
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(-1.0, EventKind.SCHEDULE_TICK))

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.push(Event(2.0, EventKind.SCHEDULE_TICK))
        assert queue.peek_time() == 2.0
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_pops_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(Event(t, EventKind.SCHEDULE_TICK))
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)


class TestShadowCluster:
    def placed_task(self, cluster, seed=1, server_id=0):
        job = make_job(seed=seed)
        task = next(t for t in job.tasks if not t.is_parameter_server)
        gpu = cluster.server(server_id).place_task(task)
        task.mark_placed(0.0, server_id, gpu.gpu_id)
        return task

    def test_reads_through_real_load(self, small_cluster):
        task = self.placed_task(small_cluster)
        shadow = ShadowCluster(small_cluster)
        server = small_cluster.server(0)
        assert shadow.server_load(server).gpu == pytest.approx(server.load.gpu)

    def test_commit_placement_adds_demand(self, small_cluster):
        job = make_job(seed=2)
        task = job.tasks[0]
        shadow = ShadowCluster(small_cluster)
        server = small_cluster.server(1)
        before = shadow.utilization(server).gpu
        shadow.commit_placement(task, 1, 0)
        assert shadow.utilization(server).gpu > before
        # The real cluster is untouched.
        assert server.load.gpu == 0.0

    def test_commit_removal_subtracts(self, small_cluster):
        task = self.placed_task(small_cluster, seed=3)
        shadow = ShadowCluster(small_cluster)
        server = small_cluster.server(0)
        shadow.commit_removal(task)
        assert shadow.server_load(server).gpu <= server.load.gpu
        assert shadow.task_location(task) is None

    def test_commit_removal_unplaced_raises(self, small_cluster):
        job = make_job(seed=4)
        shadow = ShadowCluster(small_cluster)
        with pytest.raises(ValueError):
            shadow.commit_removal(job.tasks[0])

    def test_commit_migration_moves_location(self, small_cluster):
        task = self.placed_task(small_cluster, seed=5)
        shadow = ShadowCluster(small_cluster)
        shadow.commit_migration(task, 2, 0)
        assert shadow.task_location(task) == 2
        # Real task placement unchanged until the engine applies it.
        assert task.server_id == 0

    def test_would_overload_includes_tentative(self, small_cluster):
        shadow = ShadowCluster(small_cluster)
        server = small_cluster.server(0)
        heavy = ResourceVector(gpu=0.5, cpu=1, mem=1, bw=1)
        job = make_job(seed=6)
        task = job.tasks[0]
        object.__setattr__(task, "demand", heavy) if False else None
        # Fill GPU 0..3 via commits until adding 0.5 would overload.
        for gpu_id in range(4):
            shadow._add(0, gpu_id, ResourceVector(gpu=0.6, cpu=0, mem=0, bw=0))
        assert shadow.would_overload(server, heavy, threshold=0.9)

    def test_least_loaded_gpu_shadow_aware(self, small_cluster):
        shadow = ShadowCluster(small_cluster)
        server = small_cluster.server(0)
        shadow._add(0, 0, ResourceVector(gpu=0.5, cpu=0, mem=0, bw=0))
        assert shadow.least_loaded_gpu(server) != 0

    def test_underloaded_servers_shadow_aware(self, small_cluster):
        shadow = ShadowCluster(small_cluster)
        for gpu_id in range(4):
            shadow._add(3, gpu_id, ResourceVector(gpu=0.95, cpu=0, mem=0, bw=0))
        under = shadow.underloaded_servers(0.9)
        assert all(s.server_id != 3 for s in under)
        assert len(under) == 3

    def test_snapshot_restore_roundtrip(self, small_cluster):
        shadow = ShadowCluster(small_cluster)
        job = make_job(seed=7)
        snap = shadow.snapshot()
        shadow.commit_placement(job.tasks[0], 0, 0)
        assert shadow.task_location(job.tasks[0]) == 0
        shadow.restore(snap)
        assert shadow.task_location(job.tasks[0]) is None
        server = small_cluster.server(0)
        assert shadow.server_load(server).gpu == pytest.approx(server.load.gpu)

    def test_overload_degree_matches_norm(self, small_cluster):
        shadow = ShadowCluster(small_cluster)
        server = small_cluster.server(0)
        assert shadow.overload_degree(server) == pytest.approx(
            shadow.utilization(server).norm()
        )


class TestShadowEdgeCases:
    """Corner cases of tentative accounting within one scheduler round."""

    def unplaced_task(self, seed=1):
        job = make_job(seed=seed)
        return next(t for t in job.tasks if not t.is_parameter_server)

    def test_migrate_task_placed_earlier_this_round(self, small_cluster):
        # A task tentatively placed this round is migrated before the
        # decision is ever applied: the removal must charge the shadow
        # location, not the (nonexistent) real one.
        shadow = ShadowCluster(small_cluster)
        task = self.unplaced_task()
        shadow.commit_placement(task, 0, 0)
        shadow.commit_migration(task, 1, 0)
        src, dst = small_cluster.server(0), small_cluster.server(1)
        assert shadow.task_location(task) == 1
        # Source deltas net to zero; destination carries the demand.
        assert shadow.server_load(src).gpu == pytest.approx(src.load.gpu)
        assert shadow.gpu_load(src, 0) == pytest.approx(src.gpus[0].load)
        assert shadow.server_load(dst).gpu == pytest.approx(
            dst.load.gpu + task.demand.gpu
        )

    def test_evict_then_replace_same_round(self, small_cluster):
        # Eviction and re-placement of the same task within one round:
        # the old server sheds the load, the new one gains it.
        job = make_job(seed=2)
        task = next(t for t in job.tasks if not t.is_parameter_server)
        gpu = small_cluster.server(0).place_task(task)
        task.mark_placed(0.0, 0, gpu.gpu_id)
        shadow = ShadowCluster(small_cluster)
        shadow.commit_removal(task)
        assert shadow.task_location(task) is None
        shadow.commit_placement(task, 1, 0)
        src, dst = small_cluster.server(0), small_cluster.server(1)
        assert shadow.task_location(task) == 1
        assert shadow.server_load(src).gpu == pytest.approx(
            src.load.gpu - task.demand.gpu
        )
        assert shadow.server_load(dst).gpu == pytest.approx(
            dst.load.gpu + task.demand.gpu
        )

    def test_gpu_delta_underflow_is_clamped(self, small_cluster):
        # Removing a task whose load never landed on the real cluster
        # (stale bookkeeping) drives the deltas negative; shadow reads
        # must clamp at zero rather than report negative load.
        task = self.unplaced_task(seed=3)
        task.mark_placed(0.0, 0, 0)
        shadow = ShadowCluster(small_cluster)
        shadow.commit_removal(task)
        server = small_cluster.server(0)
        load = shadow.server_load(server)
        assert min(load.gpu, load.cpu, load.mem, load.bw) >= 0.0
        assert shadow.utilization(server).norm() == pytest.approx(0.0)
        assert shadow.overload_degree(server) == pytest.approx(0.0)
        # Capacity checks keep working on the underflowed server.
        assert not shadow.would_overload(server, task.demand, threshold=1.0)
        assert shadow.least_loaded_gpu(server) == 0
