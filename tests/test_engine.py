"""Unit and behavioural tests for the discrete-event engine."""

import pytest

from repro.cluster import Cluster
from repro.sim import (
    EngineConfig,
    Eviction,
    JobStop,
    Migration,
    Placement,
    Scheduler,
    SchedulerDecision,
    SimulationEngine,
)
from repro.workload import JobState, TaskState, build_jobs, generate_trace
from tests.conftest import make_job


class PlaceAllScheduler(Scheduler):
    """Places every queued task on the first server that fits."""

    name = "place-all"

    def on_schedule(self, ctx):
        decision = SchedulerDecision()
        from repro.sim.shadow import ShadowCluster

        shadow = ShadowCluster(ctx.cluster)
        for task in ctx.queue:
            for server in ctx.cluster.servers:
                if not shadow.would_overload(server, task.demand, 0.95):
                    gpu = shadow.least_loaded_gpu(server)
                    shadow.commit_placement(task, server.server_id, gpu)
                    decision.placements.append(
                        Placement(task, server.server_id, gpu)
                    )
                    break
        return decision


class IdleScheduler(Scheduler):
    """Never places anything (starvation scenario)."""

    name = "idle"

    def on_schedule(self, ctx):
        return SchedulerDecision()


def run_small(scheduler, num_jobs=6, seed=1, config=None):
    records = generate_trace(num_jobs, duration_seconds=1800.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(6, 4)
    engine = SimulationEngine(
        scheduler, jobs, cluster, config or EngineConfig(seed=seed)
    )
    return engine, engine.run()


class TestEngineLifecycle:
    def test_all_jobs_complete(self):
        engine, metrics = run_small(PlaceAllScheduler())
        assert len(metrics.job_records) == 6
        assert not engine.active_jobs
        assert all(r.iterations_completed == r.max_iterations for r in metrics.job_records)

    def test_cluster_empty_at_end(self):
        engine, _metrics = run_small(PlaceAllScheduler())
        assert engine.cluster.total_load().norm() == pytest.approx(0.0, abs=1e-6)
        assert not engine.queue

    def test_jct_at_least_compute_time(self):
        engine, metrics = run_small(PlaceAllScheduler())
        for record in metrics.job_records:
            assert record.jct > 0.0
            assert record.completion_time >= record.arrival_time

    def test_waiting_time_nonnegative_and_bounded(self):
        _engine, metrics = run_small(PlaceAllScheduler())
        for record in metrics.job_records:
            assert 0.0 <= record.waiting_time <= record.jct + 1e-6

    def test_deterministic_given_seed(self):
        _e1, m1 = run_small(PlaceAllScheduler(), seed=5)
        _e2, m2 = run_small(PlaceAllScheduler(), seed=5)
        assert [r.jct for r in m1.job_records] == [r.jct for r in m2.job_records]
        assert m1.bandwidth_mb == m2.bandwidth_mb

    def test_idle_scheduler_hits_max_time(self):
        config = EngineConfig(max_time=7200.0)
        engine, metrics = run_small(IdleScheduler(), config=config)
        # Jobs are force-finalized with zero iterations.
        assert len(metrics.job_records) == 6
        assert all(r.iterations_completed == 0 for r in metrics.job_records)
        assert all(r.final_accuracy == 0.0 for r in metrics.job_records)

    def test_overhead_recorded(self):
        _engine, metrics = run_small(PlaceAllScheduler())
        assert metrics.scheduler_overhead_seconds
        assert metrics.average_overhead_ms() >= 0.0

    def test_accuracy_at_deadline_behaviour(self):
        _engine, metrics = run_small(PlaceAllScheduler())
        for record in metrics.job_records:
            if record.met_deadline:
                assert record.accuracy_at_deadline == pytest.approx(
                    record.final_accuracy
                )
            else:
                assert record.accuracy_at_deadline <= record.final_accuracy + 1e-9


class TestDecisionApplication:
    def setup_engine(self):
        records = generate_trace(1, duration_seconds=10.0, seed=2)
        jobs = build_jobs(records, seed=3)
        cluster = Cluster.build(4, 4)
        engine = SimulationEngine(IdleScheduler(), jobs, cluster, EngineConfig())
        job = jobs[0]
        engine._handle_arrival(job)
        return engine, job

    def test_place_task(self):
        engine, job = self.setup_engine()
        task = job.tasks[0]
        engine._apply_decision(
            SchedulerDecision(placements=[Placement(task, 0, 0)])
        )
        assert task.is_placed
        assert task not in engine.queue
        assert engine.cluster.server(0).task_count == 1

    def test_place_unqueued_raises(self):
        engine, job = self.setup_engine()
        task = job.tasks[0]
        engine._apply_decision(SchedulerDecision(placements=[Placement(task, 0, 0)]))
        with pytest.raises(ValueError):
            engine._apply_decision(
                SchedulerDecision(placements=[Placement(task, 1, 0)])
            )

    def test_evict_returns_to_queue(self):
        engine, job = self.setup_engine()
        task = job.tasks[0]
        engine._apply_decision(SchedulerDecision(placements=[Placement(task, 0, 0)]))
        engine._apply_decision(SchedulerDecision(evictions=[Eviction(task)]))
        assert task.state is TaskState.QUEUED
        assert task in engine.queue
        assert engine.metrics.num_evictions == 1

    def test_evict_unplaced_raises(self):
        engine, job = self.setup_engine()
        with pytest.raises(ValueError):
            engine._apply_decision(
                SchedulerDecision(evictions=[Eviction(job.tasks[0])])
            )

    def test_migration_accounting(self):
        engine, job = self.setup_engine()
        task = job.tasks[0]
        engine._apply_decision(SchedulerDecision(placements=[Placement(task, 0, 0)]))
        engine._apply_decision(
            SchedulerDecision(migrations=[Migration(task, 2, 1)])
        )
        assert task.server_id == 2 and task.gpu_id == 1
        assert task.num_migrations == 1
        assert engine.metrics.num_migrations == 1
        assert engine.metrics.migration_bandwidth_mb > 0.0
        assert engine.cluster.server(0).task_count == 0
        assert engine.cluster.server(2).task_count == 1

    def test_migration_same_server_noop(self):
        engine, job = self.setup_engine()
        task = job.tasks[0]
        engine._apply_decision(SchedulerDecision(placements=[Placement(task, 0, 0)]))
        engine._apply_decision(SchedulerDecision(migrations=[Migration(task, 0, 0)]))
        assert engine.metrics.num_migrations == 0

    def test_job_stop_completes_early(self):
        engine, job = self.setup_engine()
        engine._apply_decision(SchedulerDecision(stops=[JobStop(job, "test")]))
        assert job.state is JobState.COMPLETED
        assert job.stopped_early
        assert job.job_id not in engine.active_jobs
        assert all(t.state is TaskState.FINISHED for t in job.tasks)
        assert not engine.queue

    def test_iteration_starts_when_fully_placed(self):
        engine, job = self.setup_engine()
        decision = SchedulerDecision(
            placements=[Placement(t, i % 4, None) for i, t in enumerate(job.tasks)]
        )
        engine._apply_decision(decision)
        engine._start_ready_iterations()
        assert job.job_id in engine._iteration
        assert len(engine._events) >= 1


class TestStallGuard:
    def test_partial_placement_eventually_evicted(self):
        records = generate_trace(1, duration_seconds=10.0, seed=4)
        jobs = build_jobs(records, seed=5)
        job = jobs[0]
        cluster = Cluster.build(2, 4)

        class HalfPlacer(Scheduler):
            name = "half"
            placed = False

            def on_schedule(self, ctx):
                decision = SchedulerDecision()
                if not self.placed and len(ctx.queue) > 1:
                    decision.placements.append(Placement(ctx.queue[0], 0, 0))
                    self.placed = True
                return decision

        config = EngineConfig(stall_ticks=3, max_time=3600.0)
        engine = SimulationEngine(HalfPlacer(), jobs, cluster, config)
        engine.run()
        # The stall guard must have evicted the lone placed task.
        if len(job.tasks) > 1:
            assert engine.metrics.num_evictions >= 1
