"""Gateway tier of the analyzer fixture package."""
