"""Fixture gateway: direct blocking call on the event loop (REP100).

Also issues ``status`` as a request-body dict literal so the protocol
pass sees the second issuing shape.
"""

import asyncio
import time


class GatewayDaemon:
    async def poll_workers(self) -> dict:
        # REP100 true positive: time.sleep stalls every connection on
        # the shared event loop.
        time.sleep(0.05)
        return {"op": "status", "job_id": "job-1"}

    async def poll_workers_offloaded(self) -> dict:
        # Clean variant: the same pause routed off-loop must not flag.
        await asyncio.sleep(0.05)
        return {"op": "status", "job_id": "job-2"}
