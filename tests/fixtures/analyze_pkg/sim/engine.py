"""Fixture engine: snapshot-reachable state for REP102.

``SimulationEngine`` is a snapshot root itself AND is held by the
fixture ``SchedulerService``, so its fields are reached both directly
and through the type graph.
"""

import socket
import threading
from concurrent.futures import ThreadPoolExecutor


class SimulationEngine:
    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.round_index = 0
        # REP102 true positive: an executor pickled with every snapshot.
        self._pool = ThreadPoolExecutor(2)
        # Suppressed variant: acknowledged, waived inline.
        self._probe = socket.socket()  # repro-analyze: disable=REP102

    def step(self) -> int:
        self.round_index += 1
        return self.round_index


class EngineGuard:
    """Held by the service core via an annotated attribute (type graph)."""

    def __init__(self) -> None:
        # REP102 true positive reached transitively: SchedulerService ->
        # EngineGuard -> lock.
        self._mutex = threading.Lock()
