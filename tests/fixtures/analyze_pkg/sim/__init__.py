"""Engine tier of the analyzer fixture package."""
