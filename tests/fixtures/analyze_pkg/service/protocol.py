"""Fixture wire protocol: VERBS declarations with seeded drift.

``ghost`` is declared and issued but handled nowhere (REP101
unhandled); ``unsent`` is declared and handled but issued nowhere
(REP101 unissued); ``submit``/``status`` are fully consistent except
for the parameter drift seeded in :mod:`..client`.
"""

VERBS = frozenset({"submit", "status", "ghost", "unsent"})
