"""Fixture telemetry exporter (REP103 sink target)."""


class TelemetryExporter:
    def __init__(self, path: str) -> None:
        self.path = path
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)
