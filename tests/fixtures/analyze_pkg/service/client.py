"""Fixture client: verb-issuing sites with seeded drift.

* issues ``submit`` with a ``priority`` parameter the dispatcher never
  reads (REP101 signature drift);
* issues ``ghost``, declared but handled nowhere (pairs with the
  protocol module's REP101 unhandled finding);
* issues ``mystery``, declared nowhere (REP101 undeclared);
* a suppressed undeclared issue shows the inline waiver.
"""


class ServiceClient:
    def call(self, op: str, **params) -> dict:
        return {"op": op, **params}

    def submit(self, model: str) -> dict:
        # REP101 true positive: ``priority`` is sent but no dispatcher
        # reads it.
        return self.call("submit", model=model, priority=7)

    def status(self, job_id: str) -> dict:
        return self.call("status", job_id=job_id)

    def ghost(self) -> dict:
        return self.call("ghost")

    def mystery(self) -> dict:
        # REP101 true positive: issued but never declared in VERBS.
        return self.call("mystery")

    def covert(self) -> dict:
        # Suppressed variant: waived inline, must not flag.
        return self.call("covert")  # repro-analyze: disable=REP101
