"""Service tier of the analyzer fixture package."""
