"""Fixture daemon: async shell + snapshot root + taint flows.

Seeds:

* REP100 — ``SchedulerDaemon.handle_snapshot`` reaches blocking
  ``pickle.dump``/``open`` transitively through ``SchedulerService.flush``;
  a suppressed ``time.sleep`` shows the inline waiver.
* REP101 — dispatches ``rogue`` which VERBS never declared; handles
  ``unsent`` which no client issues; reads only ``model`` from
  ``submit`` (the client also sends ``priority`` — drift).
* REP102 — ``SchedulerService._lock`` (true positive),
  ``SchedulerService._handle`` (excluded in ``__getstate__``; clean),
  plus the engine/guard fields reached through the type graph.
* REP103 — wall-clock taint flows into a sha256 digest through a
  helper return and a local assignment.
"""

import hashlib
import pickle
import threading
import time

from analyze_pkg.service.telemetry import TelemetryExporter
from analyze_pkg.sim.engine import EngineGuard, SimulationEngine


class SchedulerService:
    """The pickled snapshot root (mirrors the real SchedulerService)."""

    def __init__(self, seed: int, path: str) -> None:
        self.seed = seed
        self.path = path
        self.engine = SimulationEngine(seed)
        self.guard: EngineGuard = EngineGuard()
        self.telemetry = TelemetryExporter(path + ".jsonl")
        # REP102 true positive: a lock pickled with every snapshot.
        self._lock = threading.Lock()
        # Clean variant: excluded in __getstate__ below.
        self._handle = open(path, "a")

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_handle"] = None
        return state

    def flush(self) -> None:
        """Blocking snapshot write (REP100 when reached from async)."""
        with open(self.path, "wb") as fh:
            pickle.dump(self, fh)

    def _wallclock(self) -> float:
        """Tainted return: propagates through the call graph."""
        return time.time()

    def round_digest(self) -> str:
        """REP103 true positive: wall-clock stamp hashed into a digest."""
        stamp = self._wallclock()
        digest = hashlib.sha256(str(stamp).encode("utf-8"))
        return digest.hexdigest()

    def emit_round(self) -> None:
        """REP103 true positive: entropy into a telemetry record."""
        self.telemetry.emit({"round": self.engine.round_index, "at": time.time_ns()})


class SchedulerDaemon:
    """The asyncio shell over the synchronous core."""

    def __init__(self, core: SchedulerService) -> None:
        self.core = core

    async def handle_snapshot(self) -> None:
        # REP100 true positive: blocking pickle write reached
        # transitively (handle_snapshot -> flush -> open/pickle.dump).
        self.core.flush()

    async def handle_pause(self) -> None:
        # Suppressed variant: waived inline, must not flag.
        time.sleep(0.01)  # repro-analyze: disable=REP100

    async def dispatch(self, request) -> dict:
        params = request.params
        if request.op == "submit":
            return {"model": params.get("model")}
        if request.op == "status":
            return {"job": params.get("job_id")}
        if request.op == "unsent":
            return {"ok": True}
        if request.op == "rogue":
            # REP101 true positive: handled but never declared in VERBS.
            return {"rogue": True}
        return {"error": "unknown"}
