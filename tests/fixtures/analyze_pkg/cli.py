"""Fixture CLI: issues the consistent verbs (issuer coverage for cli)."""

from analyze_pkg.service.client import ServiceClient


def main() -> int:
    client = ServiceClient()
    client.submit("resnet")
    client.status("job-0")
    return 0
