"""Seeded true-positive catalogue for ``repro analyze`` (REP100-REP103).

A miniature of the real service topology (protocol / daemon / client /
gateway / engine) where every violation class the whole-program
analyzer detects is planted deliberately, alongside suppressed and
legitimately-excluded variants that must NOT flag.
``tests/test_check_graph.py`` asserts the exact findings.
"""
