"""Seeded lint fixture: exactly one violation of each rule REP001-REP007.

``tests/test_check_lint.py`` asserts that ``repro lint`` reports exactly
these rule ids (once each) on this file.  The file sits outside the
``repro`` package, so every rule group applies (FULL_SCOPE).  Never
import this module -- it exists only to be linted.
"""

import random
import time
import uuid


def wall_clock() -> float:
    return time.time()  # REP001: wall-clock read


def global_draw() -> float:
    return random.random()  # REP002: global RNG draw


def mutable_default(history=[]):  # REP003: mutable default argument
    history.append(len(history))
    return history


def swallow_everything() -> None:
    try:
        wall_clock()
    except:  # REP004: bare except
        pass


def same_priority(score: float, other_score: float) -> bool:
    return score == other_score  # REP005: float == on scores


def report(value: float) -> None:
    print(value)  # REP006: print in library code


def fresh_id() -> str:
    return uuid.uuid4().hex  # REP007: non-deterministic ID source
