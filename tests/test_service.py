"""Tests for the online scheduler service.

Covers the stepping engine refactor (step/run equivalence, mid-run
injection, cancellation), the wire protocol, admission control, the
snapshot ring, deterministic snapshot/restore of the whole service
core, and a daemon/client round trip over a real Unix socket.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster
from repro.core import make_mlf_h
from repro.service import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    JobSpec,
    ProtocolError,
    Request,
    Response,
    SchedulerService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SnapshotManager,
    parse_request,
    parse_response,
    read_telemetry,
    summarize_telemetry,
)
from repro.service.daemon import ThreadedDaemon
from repro.service.snapshot import SnapshotError
from repro.sim import EngineConfig, SimulationEngine
from repro.workload import build_jobs, generate_trace
from tests.conftest import make_job

WEEK = 7 * 24 * 3600.0


def small_engine(num_jobs=16, servers=4, seed=21):
    records = generate_trace(num_jobs, duration_seconds=1800.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(servers, 4)
    return SimulationEngine(make_mlf_h(), jobs, cluster, EngineConfig(max_time=WEEK))


def job_tuples(metrics):
    return sorted(
        (
            r.job_id,
            r.jct,
            r.completion_time,
            r.iterations_completed,
            r.num_migrations,
            r.stopped_early,
        )
        for r in metrics.job_records
    )


class TestSteppingEngine:
    def test_step_loop_matches_run(self):
        metrics_run = small_engine().run()

        engine = small_engine()
        engine.start()
        while True:
            result = engine.advance()
            if result.drained or result.events_processed == 0:
                break
        engine.finalize()

        assert job_tuples(engine.metrics) == job_tuples(metrics_run)

    def test_round_results_are_consistent(self):
        engine = small_engine(num_jobs=8)
        engine.start()
        results = []
        while True:
            result = engine.advance()
            results.append(result)
            if result.drained or result.events_processed == 0:
                break
        indices = [r.round_index for r in results if r.ticked]
        assert indices == sorted(indices)
        times = [r.now for r in results]
        assert times == sorted(times)
        assert all(r.queue_depth >= 0 for r in results)
        assert sum(r.arrivals for r in results) == 8
        assert results[-1].drained

    def test_inject_job_mid_run(self):
        engine = small_engine(num_jobs=6, seed=31)
        engine.start()
        for _ in range(3):
            engine.advance()
        injected_at = engine.now
        late = make_job(seed=5, job_id="late", gpus=2, iterations=5)
        arrival = engine.inject_job(late)
        assert arrival >= injected_at
        while True:
            result = engine.advance()
            if result.drained or result.events_processed == 0:
                break
        engine.finalize()
        records = {r.job_id: r for r in engine.metrics.job_records}
        assert "late" in records
        assert records["late"].arrival_time == arrival
        assert len(records) == 7

    def test_inject_arrival_clamped_to_now(self):
        engine = small_engine(num_jobs=4, seed=33)
        engine.start()
        for _ in range(4):
            engine.advance()
        job = make_job(seed=9, job_id="stale", gpus=1, iterations=3)
        # An arrival time in the past must not rewind the clock.
        arrival = engine.inject_job(job, arrival_time=0.0)
        assert arrival == engine.now

    def test_inject_after_drain_restarts_engine(self):
        engine = small_engine(num_jobs=4, seed=35)
        engine.run()
        assert engine.is_drained
        job = make_job(seed=11, job_id="revive", gpus=1, iterations=3)
        engine.inject_job(job)
        assert not engine.is_drained
        while True:
            result = engine.advance()
            if result.drained or result.events_processed == 0:
                break
        engine.finalize()
        records = {r.job_id for r in engine.metrics.job_records}
        assert "revive" in records

    def test_cancel_job(self):
        engine = small_engine(num_jobs=6, seed=37)
        engine.start()
        engine.advance()
        victim = next(iter(engine.active_jobs))
        assert engine.cancel_job(victim) is True
        assert victim not in engine.active_jobs
        assert engine.cancel_job("no-such-job") is False
        engine.run()
        record = next(r for r in engine.metrics.job_records if r.job_id == victim)
        assert record.stopped_early


class TestProtocol:
    def test_request_roundtrip(self):
        request = Request(op="submit", id="r1", params={"model_name": "mlp"})
        assert parse_request(request.encode()) == request

    def test_response_roundtrip(self):
        ok = Response.success({"pong": True}, id="r1")
        assert parse_response(ok.encode()) == ok
        bad = Response.failure("boom", id="r2")
        parsed = parse_response(bad.encode())
        assert not parsed.ok
        assert parsed.error == "boom"

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b'{"op":"fly"}\n')

    def test_malformed_lines_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b"not json\n")
        with pytest.raises(ProtocolError):
            parse_request(b"[1,2]\n")
        with pytest.raises(ProtocolError):
            parse_response(b'{"id":"x"}\n')

    def test_jobspec_validation(self):
        with pytest.raises(ProtocolError):
            JobSpec(gpus_requested=0).validate()
        with pytest.raises(ProtocolError):
            JobSpec(accuracy_requirement=2.0).validate()
        with pytest.raises(ProtocolError):
            JobSpec.from_payload({"model_name": "mlp", "flavour": "spicy"})

    def test_jobspec_payload_roundtrip(self):
        spec = JobSpec(model_name="resnet", gpus_requested=2, job_id="j1")
        assert JobSpec.from_payload(spec.to_payload()) == spec


class TestAdmissionController:
    def test_admits_on_idle_cluster(self):
        controller = AdmissionController(threshold=0.9, alpha=1.0)
        cluster = Cluster.build(2, 4)
        assert controller.check(cluster) is AdmissionDecision.ADMIT

    def test_queue_and_fifo_release(self):
        controller = AdmissionController(threshold=-1.0, alpha=1.0)
        cluster = Cluster.build(2, 4)
        # threshold below any O_c: permanently overloaded.
        assert controller.check(cluster) is AdmissionDecision.QUEUE
        controller.park("a")
        assert controller.check(cluster) is AdmissionDecision.QUEUE
        controller.park("b")
        assert controller.release(cluster) == []
        # Raise the threshold: the overload clears, queue drains FIFO.
        controller.threshold = 10.0
        assert controller.release(cluster, limit=1) == ["a"]
        assert controller.release(cluster) == ["b"]
        assert controller.queue_depth == 0

    def test_no_queue_jumping_after_overload_clears(self):
        controller = AdmissionController(threshold=-1.0, alpha=1.0)
        cluster = Cluster.build(2, 4)
        controller.check(cluster)
        controller.park("early")
        controller.threshold = 10.0
        # Not overloaded anymore, but "early" is still parked: a new
        # submission must queue behind it, not jump ahead.
        assert controller.check(cluster) is AdmissionDecision.QUEUE

    def test_reject_policy_and_queue_limit(self):
        controller = AdmissionController(
            threshold=-1.0, alpha=1.0, policy=AdmissionPolicy.REJECT
        )
        cluster = Cluster.build(2, 4)
        assert controller.check(cluster) is AdmissionDecision.REJECT
        queued = AdmissionController(threshold=-1.0, alpha=1.0, queue_limit=1)
        queued.check(cluster)
        queued.park("only")
        assert queued.check(cluster) is AdmissionDecision.REJECT

    def test_withdraw(self):
        controller = AdmissionController()
        controller.park("x")
        assert controller.withdraw("x") is True
        assert controller.withdraw("x") is False
        assert controller.parked_ids() == []


def service_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        socket_path=str(tmp_path / "repro.sock"),
        servers=4,
        gpus_per_server=4,
        seed=7,
        round_interval=0.0,
        snapshot_dir=None,
        telemetry_path=None,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestServiceCore:
    def test_submit_runs_to_completion(self, tmp_path):
        core = SchedulerService(service_config(tmp_path))
        outcomes = [
            core.submit(JobSpec(model_name="alexnet", gpus_requested=2, max_iterations=5)),
            core.submit(JobSpec(model_name="svm", gpus_requested=1, max_iterations=4)),
        ]
        assert all(o["status"] == "admitted" for o in outcomes)
        result = core.drain()
        assert result["idle"]
        for outcome in outcomes:
            assert core.status(outcome["job_id"])["state"] == "completed"
        assert core.metrics()["summary"]["jobs"] == 2
        assert len(core.telemetry.records) > 0
        summary = summarize_telemetry(core.telemetry.records)
        assert summary["jobs_completed"] == 2

    def test_admission_queues_under_overload_then_releases(self, tmp_path):
        core = SchedulerService(
            service_config(
                tmp_path,
                servers=1,
                gpus_per_server=1,
                admission_threshold=0.05,
                admission_alpha=1.0,
            )
        )
        first = core.submit(JobSpec(model_name="svm", gpus_requested=1, max_iterations=6))
        assert first["status"] == "admitted"
        core.advance_round()  # place the first job: the cluster is now hot
        second = core.submit(JobSpec(model_name="svm", gpus_requested=1, max_iterations=4))
        assert second["status"] == "queued"
        third = core.submit(JobSpec(model_name="svm", gpus_requested=1, max_iterations=4))
        assert third["status"] == "queued"
        assert core.admission.parked_ids() == [second["job_id"], third["job_id"]]
        core.drain()
        for outcome in (first, second, third):
            assert core.status(outcome["job_id"])["state"] == "completed"

    def test_reject_policy(self, tmp_path):
        core = SchedulerService(
            service_config(
                tmp_path,
                servers=1,
                gpus_per_server=1,
                admission_policy="reject",
                admission_threshold=0.05,
                admission_alpha=1.0,
            )
        )
        core.submit(JobSpec(model_name="svm", gpus_requested=1, max_iterations=6))
        core.advance_round()
        bounced = core.submit(JobSpec(model_name="svm", gpus_requested=1))
        assert bounced["status"] == "rejected"
        assert core.status(bounced["job_id"])["state"] == "rejected"

    def test_cancel_parked_and_active(self, tmp_path):
        core = SchedulerService(
            service_config(
                tmp_path,
                servers=1,
                gpus_per_server=1,
                admission_threshold=0.05,
                admission_alpha=1.0,
            )
        )
        active = core.submit(JobSpec(model_name="svm", gpus_requested=1, max_iterations=8))
        core.advance_round()
        parked = core.submit(JobSpec(model_name="svm", gpus_requested=1))
        assert parked["status"] == "queued"
        assert core.cancel(parked["job_id"])["status"] == "cancelled"
        assert core.admission.queue_depth == 0
        assert core.cancel(active["job_id"])["status"] == "cancelled"
        with pytest.raises(ProtocolError):
            core.cancel(active["job_id"])  # already cancelled
        with pytest.raises(ProtocolError):
            core.cancel("svc-99999")

    def test_submissions_rejected_while_draining(self, tmp_path):
        core = SchedulerService(service_config(tmp_path))
        core.submit(JobSpec(model_name="mlp", gpus_requested=1, max_iterations=3))
        core.drain()
        late = core.submit(JobSpec(model_name="mlp", gpus_requested=1))
        assert late["status"] == "rejected"
        assert late["reason"] == "draining"


class TestSnapshotManager:
    def test_save_load_and_prune(self, tmp_path):
        manager = SnapshotManager(tmp_path / "snaps", keep=2)
        for round_index in range(4):
            manager.save({"round": round_index}, round_index=round_index, sim_time=60.0)
        paths = manager.list_snapshots()
        assert len(paths) == 2  # pruned down to the newest two
        assert manager.load() == {"round": 3}
        meta = manager.load_meta()
        assert meta["round"] == 3
        assert meta["sim_time"] == 60.0

    def test_load_without_snapshot_raises(self, tmp_path):
        manager = SnapshotManager(tmp_path / "empty")
        with pytest.raises(SnapshotError):
            manager.load()


def scripted_specs(count=12):
    rng = random.Random(99)
    return [
        JobSpec(
            model_name=rng.choice(["alexnet", "lstm", "mlp", "resnet", "svm"]),
            gpus_requested=rng.choice([1, 2, 4]),
            max_iterations=rng.randint(4, 12),
            accuracy_requirement=0.7,
            urgency=rng.randint(0, 10),
        )
        for _ in range(count)
    ]


def submit_window(core, specs, start, stop):
    """Submit one spec per round over [start, stop)."""
    for index in range(start, stop):
        core.submit(specs[index])
        core.advance_round()


class TestDeterministicResume:
    def test_resume_equals_uninterrupted_run(self, tmp_path):
        specs = scripted_specs()

        # Run A: uninterrupted.
        plain = SchedulerService(service_config(tmp_path / "a", seed=13))
        submit_window(plain, specs, 0, len(specs))
        plain.drain()
        baseline = job_tuples(plain.engine.metrics)
        assert len(baseline) == len(specs)

        # Run B: identical submissions, but killed after round 6 and
        # restored from the snapshot taken there.
        snap_dir = tmp_path / "b" / "snaps"
        interrupted = SchedulerService(
            service_config(tmp_path / "b", seed=13, snapshot_dir=str(snap_dir))
        )
        submit_window(interrupted, specs, 0, 6)
        assert interrupted.snapshot_now() is not None
        del interrupted  # "crash"

        restored = SchedulerService.restore(snap_dir)
        submit_window(restored, specs, 6, len(specs))
        restored.drain()

        assert job_tuples(restored.engine.metrics) == baseline

    def test_restore_resumes_snapshot_ring(self, tmp_path):
        snap_dir = tmp_path / "snaps"
        core = SchedulerService(
            service_config(tmp_path, seed=3, snapshot_dir=str(snap_dir))
        )
        core.submit(JobSpec(model_name="mlp", gpus_requested=1, max_iterations=3))
        core.advance_round()
        first = core.snapshot_now()
        restored = SchedulerService.restore(snap_dir)
        restored.advance_round()
        second = restored.snapshot_now()
        assert second is not None and second != first
        assert str(snap_dir) in second  # same ring as before the restore

    def test_restore_reopens_admissions_after_drain(self, tmp_path):
        # A drain before shutdown must not leave the revived daemon
        # rejecting every submission.
        snap_dir = tmp_path / "snaps"
        core = SchedulerService(
            service_config(tmp_path, seed=5, snapshot_dir=str(snap_dir))
        )
        core.submit(JobSpec(model_name="mlp", gpus_requested=1, max_iterations=3))
        core.drain()
        core.snapshot_now()
        restored = SchedulerService.restore(snap_dir)
        assert not restored.draining
        out = restored.submit(JobSpec(model_name="svm", gpus_requested=1))
        assert out["status"] == "admitted"

    def test_observability_survives_restore(self, tmp_path):
        # Metric counters and job timelines are part of the snapshot:
        # the revived service continues counting where the old one died,
        # and pre-crash job histories stay queryable.
        specs = scripted_specs()
        snap_dir = tmp_path / "snaps"
        core = SchedulerService(
            service_config(tmp_path, seed=13, snapshot_dir=str(snap_dir))
        )
        submit_window(core, specs, 0, 6)
        pre_snapshot = core.observer.registry.scalar_snapshot()
        pre_jobs = core.observer.timeline.job_ids()
        assert pre_snapshot["mlfs_job_arrivals_total"] == 6
        assert len(pre_jobs) == 6
        core.snapshot_now()
        del core  # "crash"

        restored = SchedulerService.restore(snap_dir)
        snap = restored.observer.registry.scalar_snapshot()
        assert snap["mlfs_job_arrivals_total"] == 6
        assert snap["mlfs_rounds_total"] == pre_snapshot["mlfs_rounds_total"]
        assert restored.observer.timeline.job_ids() == pre_jobs
        first = pre_jobs[0]
        events = [e["event"] for e in restored.observer.timeline.history(first)]
        assert events[0] == "admission"
        assert "placed" in events

        # Counters keep advancing from the restored values, and the
        # restored engine routes events into the restored observer.
        submit_window(restored, specs, 6, len(specs))
        restored.drain()
        final = restored.observer.registry.scalar_snapshot()
        assert final["mlfs_job_arrivals_total"] == len(specs)
        assert final["mlfs_job_completions_total"] == len(specs)
        assert final["mlfs_rounds_total"] > snap["mlfs_rounds_total"]
        last_events = [
            e["event"] for e in restored.observer.timeline.history(pre_jobs[-1])
        ]
        assert last_events[-1] in ("completed", "stopped")


class TestDaemonRoundTrip:
    def test_submit_status_metrics_telemetry(self, tmp_path):
        config = service_config(
            tmp_path,
            telemetry_path=str(tmp_path / "telemetry.jsonl"),
            snapshot_dir=str(tmp_path / "snaps"),
        )
        with ThreadedDaemon(config) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                assert client.ping()
                out = client.submit(
                    JobSpec(model_name="alexnet", gpus_requested=2, max_iterations=5)
                )
                assert out["status"] == "admitted"
                job_id = out["job_id"]
                for _ in range(300):
                    if client.status(job_id)["state"] == "completed":
                        break
                    client.step(rounds=1)
                status = client.status(job_id)
                assert status["state"] == "completed"
                assert status["jct"] > 0.0
                metrics = client.metrics()
                assert metrics["summary"]["jobs"] == 1
                snapshot_path = client.snapshot()
                assert snapshot_path.endswith(".pkl")
                everything = client.status()
                assert [j["job_id"] for j in everything["jobs"]] == [job_id]
                with pytest.raises(ServiceError):
                    client.status("svc-404")

        records = read_telemetry(config.telemetry_path)
        assert records
        assert summarize_telemetry(records)["jobs_completed"] == 1

    def test_stop_flushes_snapshot_and_handles_off_loop(self, tmp_path):
        # Regression for the REP100 finding `repro analyze` surfaced:
        # the final snapshot + telemetry/trace flush used to run on the
        # event loop inside stop(); they now run via asyncio.to_thread.
        # The observable contract is unchanged — a clean shutdown must
        # still persist the tail of the run.
        snap_dir = tmp_path / "snaps"
        config = service_config(
            tmp_path,
            snapshot_dir=str(snap_dir),
            telemetry_path=str(tmp_path / "telemetry.jsonl"),
        )
        with ThreadedDaemon(config) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                client.submit(
                    JobSpec(model_name="svm", gpus_requested=1, max_iterations=4)
                )
                client.drain()
        # The context exit drove SchedulerDaemon.stop(): the final
        # snapshot exists and restores to the drained state.
        restored = SchedulerService.restore(snap_dir)
        assert restored.idle
        assert restored.metrics()["summary"]["jobs"] == 1
        # close() ran too: telemetry reached disk before the loop died.
        assert read_telemetry(config.telemetry_path)

    def test_drain_via_socket(self, tmp_path):
        config = service_config(tmp_path)
        with ThreadedDaemon(config) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                for _ in range(3):
                    client.submit(JobSpec(model_name="svm", gpus_requested=1, max_iterations=4))
                result = client.drain()
                assert result["idle"]
                assert result["summary"]["jobs"] == 3
                # Draining closed admissions for good.
                late = client.submit(JobSpec(model_name="svm", gpus_requested=1))
                assert late["status"] == "rejected"

    def test_metrics_text_and_history_verbs(self, tmp_path):
        config = service_config(
            tmp_path, telemetry_path=str(tmp_path / "telemetry.jsonl")
        )
        with ThreadedDaemon(config) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                out = client.submit(
                    JobSpec(model_name="alexnet", gpus_requested=2, max_iterations=5)
                )
                job_id = out["job_id"]
                client.drain()

                text = client.metrics_text()
                families = {
                    line.split()[2]
                    for line in text.splitlines()
                    if line.startswith("# TYPE")
                }
                # The acceptance bar: at least ten distinct families,
                # including the per-phase latency histogram.
                assert len(families) >= 10
                assert "mlfs_scheduler_phase_seconds" in families
                assert "mlfs_job_arrivals_total" in families
                assert "mlfs_service_submissions_total" in families
                assert 'phase="priority"' in text

                history = client.history(job_id)
                assert history["job_id"] == job_id
                events = [e["event"] for e in history["events"]]
                assert events[0] == "admission"
                assert "placed" in events
                assert events[-1] in ("completed", "stopped")
                for event in history["events"]:
                    assert "time" in event
                with pytest.raises(ServiceError):
                    client.history("svc-404")

        # Telemetry rounds embed the metric snapshot for offline replay.
        records = read_telemetry(config.telemetry_path)
        assert records
        obs = records[-1]["obs"]
        assert obs["mlfs_job_completions_total"] == 1
