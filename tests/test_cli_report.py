"""Tests for the CLI and the Markdown report generator."""

import pytest

from repro.analysis import best_scheduler, improvement_over, render_report
from repro.baselines import FIFOScheduler
from repro.cli import SCHEDULER_FACTORIES, build_parser, main, scheduler_by_name
from repro.cluster import Cluster
from repro.core import make_mlf_h
from repro.sim import EngineConfig, SimulationSetup, run_comparison
from repro.workload import generate_trace, write_trace


@pytest.fixture(scope="module")
def comparison_results():
    records = generate_trace(8, duration_seconds=900.0, seed=100)
    setup = SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(4, 4),
        workload_seed=101,
        engine_config=EngineConfig(),
    )
    return run_comparison([make_mlf_h(), FIFOScheduler()], setup)


class TestReport:
    def test_render_contains_sections(self, comparison_results):
        report = render_report(comparison_results, title="Test run")
        assert "# Test run" in report
        assert "## Headline metrics" in report
        assert "## Winners" in report
        assert "## JCT distribution" in report
        assert "MLF-H" in report and "FIFO" in report

    def test_empty_results_raise(self):
        with pytest.raises(ValueError):
            render_report({})

    def test_unknown_reference_raises(self, comparison_results):
        with pytest.raises(KeyError):
            render_report(comparison_results, reference="nope")

    def test_best_scheduler_direction(self, comparison_results):
        name_jct, value_jct = best_scheduler(comparison_results, "avg_jct_s")
        for result in comparison_results.values():
            assert result.summary()["avg_jct_s"] >= value_jct - 1e-9
        name_acc, value_acc = best_scheduler(comparison_results, "avg_accuracy")
        for result in comparison_results.values():
            assert result.summary()["avg_accuracy"] <= value_acc + 1e-9

    def test_improvement_sign_convention(self, comparison_results):
        winner, _ = best_scheduler(comparison_results, "avg_jct_s")
        other = next(n for n in comparison_results if n != winner)
        assert improvement_over(comparison_results, "avg_jct_s", winner, other) >= 0.0


class TestCLI:
    def test_all_factories_construct(self):
        for name in SCHEDULER_FACTORIES:
            scheduler = scheduler_by_name(name)
            assert scheduler.name == name or scheduler.name  # constructed

    def test_unknown_scheduler_exits(self):
        with pytest.raises(SystemExit):
            scheduler_by_name("nope")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_command(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        code = main(["trace", "--jobs", "5", "--hours", "0.2", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote 5 jobs" in capsys.readouterr().out

    def test_run_command(self, tmp_path, capsys):
        trace_path = tmp_path / "t.csv"
        write_trace(generate_trace(4, duration_seconds=600.0, seed=5), trace_path)
        code = main(
            [
                "run",
                "--trace",
                str(trace_path),
                "--scheduler",
                "FIFO",
                "--servers",
                "4",
            ]
        )
        assert code == 0
        assert "avg_jct_s" in capsys.readouterr().out

    def test_compare_command_writes_report(self, tmp_path, capsys):
        trace_path = tmp_path / "t.csv"
        write_trace(generate_trace(4, duration_seconds=600.0, seed=6), trace_path)
        report_path = tmp_path / "report.md"
        code = main(
            [
                "compare",
                "--trace",
                str(trace_path),
                "--servers",
                "4",
                "--schedulers",
                "FIFO,Graphene",
                "--out",
                str(report_path),
            ]
        )
        assert code == 0
        text = report_path.read_text()
        assert "## Headline metrics" in text
        assert "Graphene" in text
