"""Unit tests for ResourceVector arithmetic and geometry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import NUM_RESOURCE_KINDS, ResourceKind, ResourceVector

finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.builds(ResourceVector, finite, finite, finite, finite)


class TestConstruction:
    def test_zeros(self):
        assert ResourceVector.zeros().as_tuple() == (0.0, 0.0, 0.0, 0.0)

    def test_uniform(self):
        assert ResourceVector.uniform(2.5).as_tuple() == (2.5, 2.5, 2.5, 2.5)

    def test_from_iterable_order_matches_kinds(self):
        v = ResourceVector.from_iterable([1, 2, 3, 4])
        assert v.gpu == 1 and v.cpu == 2 and v.mem == 3 and v.bw == 4

    def test_from_iterable_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            ResourceVector.from_iterable([1, 2, 3])

    def test_num_resource_kinds(self):
        assert NUM_RESOURCE_KINDS == 4

    def test_getitem_by_kind(self):
        v = ResourceVector(1, 2, 3, 4)
        assert v[ResourceKind.GPU] == 1
        assert v[ResourceKind.BW] == 4

    def test_iter_yields_in_kind_order(self):
        assert list(ResourceVector(1, 2, 3, 4)) == [1, 2, 3, 4]


class TestArithmetic:
    def test_add(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(4, 3, 2, 1)
        assert (a + b).as_tuple() == (5, 5, 5, 5)

    def test_sub(self):
        a = ResourceVector(5, 5, 5, 5)
        b = ResourceVector(1, 2, 3, 4)
        assert (a - b).as_tuple() == (4, 3, 2, 1)

    def test_scalar_mul_commutes(self):
        v = ResourceVector(1, 2, 3, 4)
        assert (v * 2).as_tuple() == (2 * v).as_tuple() == (2, 4, 6, 8)

    def test_divide_by(self):
        load = ResourceVector(2, 16, 122, 625)
        cap = ResourceVector(4, 32, 244, 1250)
        assert load.divide_by(cap).as_tuple() == (0.5, 0.5, 0.5, 0.5)

    def test_divide_by_zero_capacity_gives_zero(self):
        load = ResourceVector(1, 1, 1, 1)
        cap = ResourceVector(0, 0, 0, 0)
        assert load.divide_by(cap).as_tuple() == (0, 0, 0, 0)

    def test_clamp_nonnegative(self):
        v = ResourceVector(-1e-15, 1, -2, 3)
        assert v.clamp_nonnegative().as_tuple() == (0, 1, 0, 3)


class TestComparisons:
    def test_fits_within(self):
        small = ResourceVector(1, 1, 1, 1)
        big = ResourceVector(2, 2, 2, 2)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_fits_within_tolerance(self):
        a = ResourceVector(1.0 + 1e-12, 1, 1, 1)
        assert a.fits_within(ResourceVector(1, 1, 1, 1))

    def test_exceeds_any(self):
        v = ResourceVector(0.5, 0.95, 0.2, 0.1)
        assert v.exceeds_any(0.9)
        assert not v.exceeds_any(0.95)


class TestGeometry:
    def test_norm(self):
        assert ResourceVector(3, 4, 0, 0).norm() == pytest.approx(5.0)

    def test_distance(self):
        a = ResourceVector(1, 0, 0, 0)
        b = ResourceVector(0, 1, 0, 0)
        assert a.distance_to(b) == pytest.approx(math.sqrt(2))

    def test_element_minmax(self):
        a = ResourceVector(1, 5, 2, 8)
        b = ResourceVector(3, 4, 6, 7)
        assert a.element_max(b).as_tuple() == (3, 5, 6, 8)
        assert a.element_min(b).as_tuple() == (1, 4, 2, 7)

    def test_max_component(self):
        assert ResourceVector(1, 9, 3, 4).max_component() == 9

    def test_replace(self):
        v = ResourceVector(1, 2, 3, 4).replace(ResourceKind.MEM, 9)
        assert v.as_tuple() == (1, 2, 9, 4)


class TestProperties:
    @given(vectors, vectors)
    def test_add_commutes(self, a, b):
        assert (a + b).as_tuple() == (b + a).as_tuple()

    @given(vectors)
    def test_sub_self_is_zero(self, a):
        assert (a - a).norm() == 0.0

    @given(vectors)
    def test_norm_nonnegative(self, a):
        assert a.norm() >= 0.0

    @given(vectors, vectors)
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(vectors, vectors)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(vectors)
    def test_element_max_with_self(self, a):
        assert a.element_max(a).as_tuple() == a.as_tuple()
