"""Shared fixtures: small deterministic jobs, clusters and workloads.

Also the suite-wide plumbing:

* ``--update-golden`` regenerates ``tests/golden/*.jsonl`` (see
  :mod:`tests.test_golden_traces`) instead of diffing against them.
* Every test runs under a wall-clock ceiling (``signal.alarm``-based,
  so no extra dependency): a hung test raises ``TimeoutError`` where
  it is stuck instead of wedging the whole suite.  ``slow``-marked
  tests get a higher ceiling.
"""

from __future__ import annotations

import random
import signal

import pytest

#: Per-test wall-clock ceilings (seconds).
TEST_TIMEOUT_S = 120
SLOW_TEST_TIMEOUT_S = 900


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.jsonl instead of diffing against them",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """Whether golden files should be rewritten rather than compared."""
    return bool(request.config.getoption("--update-golden"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item):
    """Enforce the per-test wall-clock ceiling (POSIX main thread only)."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return
    limit = SLOW_TEST_TIMEOUT_S if item.get_closest_marker("slow") else TEST_TIMEOUT_S

    def _on_alarm(signum, frame):  # pragma: no cover - only fires on hang
        raise TimeoutError(f"test exceeded the {limit}s wall-clock ceiling")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(limit)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

from repro.cluster import Cluster, ResourceVector, Server
from repro.workload import (
    CommStructure,
    Job,
    StopOption,
    TraceRecord,
    WorkloadConfig,
    build_job,
    build_jobs,
    generate_trace,
)


def make_record(
    job_id: str = "j0",
    arrival: float = 0.0,
    gpus: int = 4,
    model: str = "alexnet",
    iterations: int = 10,
    accuracy_quantile: float = 0.8,
    urgency: int = 5,
    data_mb: float = 500.0,
) -> TraceRecord:
    """One hand-rolled trace record."""
    return TraceRecord(
        job_id=job_id,
        arrival_time=arrival,
        gpus_requested=gpus,
        model_name=model,
        max_iterations=iterations,
        accuracy_requirement=accuracy_quantile,
        urgency=urgency,
        training_data_mb=data_mb,
    )


def make_job(seed: int = 0, **record_kwargs) -> Job:
    """Build one deterministic job."""
    record = make_record(**record_kwargs)
    return build_job(record, random.Random(seed), WorkloadConfig())


@pytest.fixture
def rng() -> random.Random:
    """A seeded RNG."""
    return random.Random(1234)

@pytest.fixture
def small_cluster() -> Cluster:
    """Four p3.8xlarge-like servers (16 GPUs)."""
    return Cluster.build(4, 4)


@pytest.fixture
def single_server() -> Server:
    """One default server."""
    return Server(server_id=0)


@pytest.fixture
def simple_job() -> Job:
    """A 4-GPU AlexNet job (sequential partitions, PS structure)."""
    job = make_job(seed=7)
    if job.comm_structure is not CommStructure.PARAMETER_SERVER:
        # Re-roll until the structure is PS so tests relying on a PS
        # task are stable.  seed=7 yields PS; guard regardless.
        for seed in range(100):
            job = make_job(seed=seed)
            if job.comm_structure is CommStructure.PARAMETER_SERVER:
                break
    return job


@pytest.fixture
def svm_job() -> Job:
    """A data-parallel-only SVM job."""
    return make_job(seed=3, model="svm", gpus=4, job_id="jsvm")


@pytest.fixture
def small_workload() -> list[Job]:
    """Twenty small jobs over a one-hour window."""
    records = generate_trace(20, duration_seconds=3600.0, seed=11)
    return build_jobs(records, seed=12)


@pytest.fixture
def tight_capacity() -> ResourceVector:
    """A deliberately tiny server capacity for overload tests."""
    return ResourceVector(gpu=1.0, cpu=4.0, mem=16.0, bw=200.0)
