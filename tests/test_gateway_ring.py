"""Tests for the gateway's consistent-hash ring.

The three properties the front tier depends on: uniform key spread
within tolerance, minimal key movement on partition join/leave, and
seeded bit-for-bit determinism of the layout and every lookup.
"""

from __future__ import annotations

import pytest

from repro.gateway import HashRing, RingConfig


def keys(n: int) -> list[str]:
    return [f"tenant-{i:05d}" for i in range(n)]


class TestDistribution:
    def test_spread_is_uniform_within_tolerance(self):
        ring = HashRing(range(8), replicas=128, seed=0)
        counts = ring.spread(keys(40_000))
        expected = 40_000 / 8
        assert sum(counts.values()) == 40_000
        for node, count in counts.items():
            # 128 vnodes/partition keeps every shard within ±35 % of fair.
            assert abs(count - expected) / expected < 0.35, (node, count)

    def test_every_partition_gets_keys(self):
        ring = HashRing(range(16), replicas=64, seed=3)
        counts = ring.spread(keys(10_000))
        assert all(count > 0 for count in counts.values())

    def test_more_replicas_tighten_the_spread(self):
        sample = keys(20_000)

        def imbalance(replicas: int) -> float:
            counts = HashRing(range(8), replicas=replicas, seed=5).spread(sample)
            expected = len(sample) / 8
            return max(abs(c - expected) / expected for c in counts.values())

        assert imbalance(256) < imbalance(4)


class TestMinimalMovement:
    def test_join_moves_only_keys_the_new_node_takes(self):
        sample = keys(10_000)
        ring = HashRing(range(4), replicas=64, seed=0)
        before = {key: ring.lookup(key) for key in sample}
        ring.add_node(4)
        moved = {key for key in sample if ring.lookup(key) != before[key]}
        # Everything that moved must have moved TO the new partition.
        assert moved, "a joining partition should take over some keys"
        assert all(ring.lookup(key) == 4 for key in moved)
        # And roughly its fair share, not a reshuffle of everything.
        assert len(moved) / len(sample) < 2 / 5

    def test_leave_moves_only_the_departed_nodes_keys(self):
        sample = keys(10_000)
        ring = HashRing(range(5), replicas=64, seed=0)
        before = {key: ring.lookup(key) for key in sample}
        ring.remove_node(2)
        for key in sample:
            after = ring.lookup(key)
            if before[key] == 2:
                assert after != 2
            else:
                assert after == before[key], key

    def test_join_then_leave_restores_the_original_routing(self):
        sample = keys(5_000)
        ring = HashRing(range(4), replicas=64, seed=9)
        before = {key: ring.lookup(key) for key in sample}
        digest = ring.layout_digest()
        ring.add_node(7)
        ring.remove_node(7)
        assert ring.layout_digest() == digest
        assert {key: ring.lookup(key) for key in sample} == before

    def test_membership_errors(self):
        ring = HashRing(range(2))
        with pytest.raises(ValueError):
            ring.add_node(1)
        with pytest.raises(ValueError):
            ring.remove_node(5)
        empty = HashRing()
        with pytest.raises(ValueError):
            empty.lookup("anything")


class TestDeterminism:
    def test_same_seed_is_bit_for_bit_identical(self):
        a = HashRing(range(6), replicas=96, seed=42)
        b = HashRing(reversed(range(6)), replicas=96, seed=42)
        assert a.layout_digest() == b.layout_digest()
        for key in keys(2_000):
            assert a.lookup(key) == b.lookup(key)

    def test_different_seed_changes_the_layout(self):
        a = HashRing(range(6), replicas=96, seed=0)
        b = HashRing(range(6), replicas=96, seed=1)
        assert a.layout_digest() != b.layout_digest()

    def test_layout_digest_is_stable_across_processes(self):
        # Pinned value: SHA-256 layouts must never drift between
        # releases, or live ring configs would silently re-route.
        assert (
            HashRing(range(4), replicas=64, seed=0).layout_digest()
            == "4512d4e1bf5aa3662e39d213d07dc9c2b63a99c35d01c66afd1ec37f6213f538"
        )

    def test_config_round_trips_through_json(self):
        config = RingConfig(replicas=32, seed=11)
        assert RingConfig.from_json(config.to_json()) == config
        ring = HashRing(range(3), replicas=32, seed=11)
        assert ring.config() == config
        assert ring.nodes == [0, 1, 2]
        assert len(ring) == 3
