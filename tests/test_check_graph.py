"""Tests for the whole-program analyzer (``repro analyze``).

The seeded fixture package ``tests/fixtures/analyze_pkg`` plants at
least one true positive per rule family (REP100–REP103) plus
suppressed and legitimately-excluded variants; these tests pin the
exact findings, the baseline workflow, the SARIF 2.1.0 output, and —
as the regression gate for the daemon fixes this analyzer surfaced —
that the real tree carries no non-baselined findings.
"""

from pathlib import Path

import pytest

from repro.check.graph import (
    BASELINE_FILENAME,
    Finding,
    Project,
    analyze_paths,
    load_baseline,
    render_json,
    render_text,
    split_by_baseline,
    write_baseline,
)
from repro.check.rules import ANALYZE_RULES, LINT_RULES, REGISTRY, explain, rule_info
from repro.check.sarif import SARIF_VERSION, render_sarif, sarif_log

REPO = Path(__file__).resolve().parents[1]
FIXTURE = REPO / "tests" / "fixtures" / "analyze_pkg"


@pytest.fixture(scope="module")
def findings():
    return analyze_paths([FIXTURE])


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


class TestProgramGraph:
    def test_modules_named_from_package_root(self):
        project = Project.load([FIXTURE])
        assert "analyze_pkg.service.daemon" in project.modules
        assert "analyze_pkg.gateway.server" in project.modules

    def test_symbol_table_and_classes(self):
        project = Project.load([FIXTURE])
        assert "analyze_pkg.service.daemon.SchedulerService.flush" in project.functions
        assert "analyze_pkg.sim.engine.SimulationEngine" in project.classes

    def test_attr_type_inference(self):
        project = Project.load([FIXTURE])
        svc = project.classes["analyze_pkg.service.daemon.SchedulerService"]
        assert svc.attr_types["engine"] == "SimulationEngine"
        assert svc.attr_types["telemetry"] == "TelemetryExporter"
        # Annotated attribute (``self.guard: EngineGuard = EngineGuard()``).
        assert svc.attr_types["guard"] == "EngineGuard"
        daemon = project.classes["analyze_pkg.service.daemon.SchedulerDaemon"]
        # Inferred from the annotated constructor parameter.
        assert daemon.attr_types["core"] == "SchedulerService"

    def test_getstate_exclusions_collected(self):
        project = Project.load([FIXTURE])
        svc = project.classes["analyze_pkg.service.daemon.SchedulerService"]
        assert "_handle" in svc.pickle_excluded


class TestRep100AsyncSafety:
    def test_direct_blocking_call_flags(self, findings):
        hits = by_rule(findings, "REP100")
        direct = [f for f in hits if "time.sleep" in f.message]
        assert len(direct) == 1
        assert direct[0].path.endswith("gateway/server.py")
        assert "poll_workers" in direct[0].message

    def test_transitive_blocking_flags_with_chain(self, findings):
        hits = by_rule(findings, "REP100")
        transitive = [f for f in hits if "flush" in f.message]
        # open() and pickle.dump() inside SchedulerService.flush, both
        # reached via the async handler.
        assert len(transitive) == 2
        for finding in transitive:
            assert "handle_snapshot" in finding.message
            assert "SchedulerService.flush" in finding.message

    def test_awaited_and_suppressed_do_not_flag(self, findings):
        messages = " ".join(f.message for f in by_rule(findings, "REP100"))
        assert "poll_workers_offloaded" not in messages
        assert "handle_pause" not in messages

    def test_fixture_count(self, findings):
        assert len(by_rule(findings, "REP100")) == 3


class TestRep101ProtocolDrift:
    def test_all_drift_classes_flag(self, findings):
        keys = {f.fingerprint_key for f in by_rule(findings, "REP101")}
        assert keys == {
            "unhandled:ghost",
            "unissued:unsent",
            "undeclared-handler:rogue",
            "undeclared-issuer:mystery",
            "param-drift:submit:priority",
        }

    def test_consistent_verbs_do_not_flag(self, findings):
        messages = " ".join(f.message for f in by_rule(findings, "REP101"))
        assert "'status'" not in messages

    def test_suppressed_issue_does_not_flag(self, findings):
        keys = {f.fingerprint_key for f in by_rule(findings, "REP101")}
        assert "undeclared-issuer:covert" not in keys


class TestRep102Picklability:
    def test_lock_and_executor_flag(self, findings):
        keys = {f.fingerprint_key for f in by_rule(findings, "REP102")}
        assert "SchedulerService._lock:a threading.Lock" in keys
        assert "SimulationEngine._pool:an executor" in keys

    def test_type_graph_reaches_held_classes(self, findings):
        # EngineGuard is only reachable via SchedulerService.guard.
        keys = {f.fingerprint_key for f in by_rule(findings, "REP102")}
        assert "EngineGuard._mutex:a threading.Lock" in keys

    def test_getstate_excluded_field_does_not_flag(self, findings):
        assert not any(
            "_handle" in f.fingerprint_key for f in by_rule(findings, "REP102")
        )

    def test_suppressed_field_does_not_flag(self, findings):
        assert not any(
            "_probe" in f.fingerprint_key for f in by_rule(findings, "REP102")
        )


class TestRep103DeterminismTaint:
    def test_taint_through_helper_return_into_digest(self, findings):
        hits = by_rule(findings, "REP103")
        digest = [f for f in hits if "sha256" in f.message]
        assert len(digest) == 1
        assert "time.time()" in digest[0].message
        assert "round_digest" in digest[0].message

    def test_taint_into_telemetry_emit(self, findings):
        hits = by_rule(findings, "REP103")
        telemetry = [f for f in hits if ".emit()" in f.message]
        assert len(telemetry) == 1
        assert "time.time_ns()" in telemetry[0].message

    def test_fixture_count(self, findings):
        assert len(by_rule(findings, "REP103")) == 2


class TestBaseline:
    def test_fingerprints_are_line_independent(self):
        a = Finding("p.py", 10, 0, "REP100", "m", "key")
        b = Finding("p.py", 99, 4, "REP100", "other message", "key")
        assert a.fingerprint == b.fingerprint
        c = Finding("p.py", 10, 0, "REP101", "m", "key")
        assert a.fingerprint != c.fingerprint

    def test_write_load_roundtrip(self, findings, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        count = write_baseline(baseline_path, findings)
        assert count == len(findings)
        accepted = load_baseline(baseline_path)
        new, old = split_by_baseline(findings, accepted)
        assert new == []
        assert len(old) == len(findings)

    def test_new_finding_stays_new(self, findings, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        fresh = Finding("x.py", 1, 0, "REP100", "new", "never-seen")
        new, _ = split_by_baseline([*findings, fresh], load_baseline(baseline_path))
        assert new == [fresh]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()


class TestReporters:
    def test_text_report_shape(self, findings):
        text = render_text(findings[:2], baselined=findings[2:3])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[-1] == "2 new finding(s), 1 baselined"
        assert all(":" in line and "REP" in line for line in lines[:-1])

    def test_json_report_round_trips(self, findings):
        import json

        doc = json.loads(render_json(findings, baselined=[]))
        assert doc["count"] == len(findings)
        assert doc["baselined_count"] == 0
        for entry in doc["findings"]:
            assert set(entry) == {
                "path",
                "line",
                "col",
                "rule",
                "name",
                "message",
                "fingerprint",
            }


class TestSarif:
    def test_log_structure(self, findings):
        log = sarif_log(findings[:3], baselined=findings[3:4])
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-analyze"
        assert {r["id"] for r in driver["rules"]} == set(ANALYZE_RULES)
        assert len(run["results"]) == 4

    def test_results_reference_rules_and_locations(self, findings):
        log = sarif_log(findings)
        rule_ids = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
        for result in log["runs"][0]["results"]:
            assert result["ruleId"] in rule_ids
            assert result["message"]["text"]
            (location,) = result["locations"]
            region = location["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            assert "reproAnalyzeFingerprint/v1" in result["partialFingerprints"]

    def test_baselined_results_are_suppressed(self, findings):
        log = sarif_log([], baselined=findings[:2])
        for result in log["runs"][0]["results"]:
            assert result["suppressions"][0]["kind"] == "external"

    def test_validates_against_schema_subset(self, findings):
        jsonschema = pytest.importorskip("jsonschema")
        import json

        # The required-properties core of the SARIF 2.1.0 schema
        # (sarifLog, run, tool, result) per the OASIS spec.
        schema = {
            "type": "object",
            "required": ["version", "runs"],
            "properties": {
                "version": {"const": "2.1.0"},
                "runs": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["tool", "results"],
                        "properties": {
                            "tool": {
                                "type": "object",
                                "required": ["driver"],
                                "properties": {
                                    "driver": {
                                        "type": "object",
                                        "required": ["name"],
                                    }
                                },
                            },
                            "results": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["message"],
                                    "properties": {
                                        "message": {
                                            "type": "object",
                                            "required": ["text"],
                                        },
                                        "level": {
                                            "enum": [
                                                "none",
                                                "note",
                                                "warning",
                                                "error",
                                            ]
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        }
        log = json.loads(render_sarif(findings, baselined=[]))
        jsonschema.validate(log, schema)


class TestRulesRegistry:
    def test_registry_covers_lint_and_analyze(self):
        assert set(ANALYZE_RULES) == {"REP100", "REP101", "REP102", "REP103"}
        assert set(LINT_RULES) == {f"REP00{i}" for i in range(8)}
        assert set(LINT_RULES) | set(ANALYZE_RULES) | {"TYP001"} == set(REGISTRY)

    def test_lint_rules_alias_registry(self):
        from repro.check.lint import RULES

        assert RULES is LINT_RULES

    def test_explain_renders_all_sections(self):
        text = explain("REP100")
        assert text.startswith("REP100 [async-blocking]")
        for section in ("rationale:", "scope:", "disable:"):
            assert section in text
        assert "repro analyze" in text

    def test_explain_is_case_insensitive(self):
        assert explain("rep103") == explain("REP103")
        assert rule_info("typ001") is not None

    def test_explain_unknown_rule_lists_known(self):
        text = explain("REP999")
        assert "unknown rule" in text
        assert "REP100" in text


class TestRealTreeGate:
    def test_src_has_no_new_findings(self):
        """Regression gate: the daemon fixes hold and nothing new crept in.

        Reverting the off-loop snapshot/restore in service/daemon.py (or
        introducing any new cross-module violation) produces a finding
        whose fingerprint is not in the checked-in baseline.
        """
        findings = analyze_paths([REPO / "src"])
        baseline = load_baseline(REPO / BASELINE_FILENAME)
        new, _ = split_by_baseline(findings, baseline)
        assert new == [], "\n" + render_text(new)

    def test_baseline_entries_still_fire(self):
        """Stale baseline entries should be pruned, not accumulate."""
        findings = analyze_paths([REPO / "src"])
        current = {f.fingerprint for f in findings}
        assert load_baseline(REPO / BASELINE_FILENAME) <= current


class TestCliEntry:
    def test_main_explain_exits_zero(self, capsys):
        from repro.check import graph

        assert graph.main(["--explain", "REP102"]) == 0
        out = capsys.readouterr().out
        assert "snapshot" in out

    def test_main_json_gate_on_fixture(self, capsys, tmp_path):
        from repro.check import graph

        code = graph.main(
            [str(FIXTURE), "--format", "json", "--no-baseline"]
        )
        assert code == 1
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] > 0

    def test_main_write_baseline_then_clean(self, capsys, tmp_path):
        from repro.check import graph

        baseline = tmp_path / "b.json"
        assert (
            graph.main([str(FIXTURE), "--write-baseline", "--baseline", str(baseline)])
            == 0
        )
        capsys.readouterr()
        assert (
            graph.main([str(FIXTURE), "--baseline", str(baseline)]) == 0
        )
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out
