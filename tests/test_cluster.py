"""Unit tests for GPU, Server and Cluster accounting."""

import pytest

from repro.cluster import (
    DEFAULT_SERVER_CAPACITY,
    Cluster,
    GPU,
    ResourceKind,
    ResourceVector,
    Server,
    mean_utilization,
)
from tests.conftest import make_job


def worker_task(job, index=0):
    """A non-PS task of a job."""
    workers = [t for t in job.tasks if not t.is_parameter_server]
    return workers[index]


class TestGPU:
    def test_empty_gpu_has_zero_load(self):
        gpu = GPU(gpu_id=0)
        assert gpu.load == 0.0
        assert gpu.utilization == 0.0
        assert gpu.task_count == 0

    def test_add_remove_task_roundtrip(self):
        gpu = GPU(gpu_id=0)
        job = make_job(seed=1)
        task = worker_task(job)
        gpu.add_task(task)
        assert gpu.load == pytest.approx(task.true_demand.gpu)
        assert gpu.task_count == 1
        gpu.remove_task(task)
        assert gpu.load == 0.0
        assert gpu.task_count == 0

    def test_double_add_raises(self):
        gpu = GPU(gpu_id=0)
        task = worker_task(make_job(seed=1))
        gpu.add_task(task)
        with pytest.raises(ValueError):
            gpu.add_task(task)

    def test_remove_missing_raises(self):
        gpu = GPU(gpu_id=0)
        with pytest.raises(KeyError):
            gpu.remove_task(worker_task(make_job(seed=1)))

    def test_overload_predicate(self):
        gpu = GPU(gpu_id=0, capacity=1.0)
        job = make_job(seed=1)
        for task in job.tasks:
            gpu.add_task(task)
        assert gpu.is_overloaded(0.9) == (gpu.utilization > 0.9)

    def test_would_overload(self):
        gpu = GPU(gpu_id=0, capacity=1.0)
        assert not gpu.would_overload(0.5, threshold=0.9)
        assert gpu.would_overload(0.95, threshold=0.9)

    def test_zero_capacity_gpu(self):
        gpu = GPU(gpu_id=0, capacity=0.0)
        assert gpu.utilization == 0.0
        assert gpu.would_overload(0.01, threshold=0.9)


class TestServer:
    def test_default_has_four_gpus(self, single_server):
        assert single_server.num_gpus == 4
        assert len(single_server.gpus) == 4
        assert single_server.capacity == DEFAULT_SERVER_CAPACITY

    def test_place_updates_load_and_gpu(self, single_server):
        task = worker_task(make_job(seed=2))
        gpu = single_server.place_task(task)
        assert single_server.task_count == 1
        assert single_server.load.gpu == pytest.approx(task.true_demand.gpu)
        assert gpu.task_count == 1

    def test_place_prefers_least_loaded_gpu(self, single_server):
        job = make_job(seed=2, gpus=4)
        landed = [single_server.place_task(t).gpu_id for t in job.tasks[:4]]
        # Four similar tasks should spread over distinct GPUs.
        assert len(set(landed)) == 4

    def test_remove_restores_load(self, single_server):
        task = worker_task(make_job(seed=2))
        single_server.place_task(task)
        task.server_id = 0
        task.gpu_id = 0
        single_server.remove_task(task)
        assert single_server.task_count == 0
        assert single_server.load.norm() == pytest.approx(0.0, abs=1e-9)

    def test_remove_unknown_raises(self, single_server):
        with pytest.raises(KeyError):
            single_server.remove_task(worker_task(make_job(seed=2)))

    def test_double_place_raises(self, single_server):
        task = worker_task(make_job(seed=2))
        single_server.place_task(task)
        with pytest.raises(ValueError):
            single_server.place_task(task)

    def test_utilization_vector(self, single_server):
        task = worker_task(make_job(seed=2))
        single_server.place_task(task)
        util = single_server.utilization()
        expected = task.true_demand.divide_by(single_server.capacity)
        assert util.gpu == pytest.approx(expected.gpu)
        assert util.cpu == pytest.approx(expected.cpu)

    def test_overload_degree_is_norm(self, single_server):
        task = worker_task(make_job(seed=2))
        single_server.place_task(task)
        assert single_server.overload_degree() == pytest.approx(
            single_server.utilization().norm()
        )

    def test_is_overloaded_small_capacity(self, tight_capacity):
        server = Server(server_id=0, capacity=tight_capacity, num_gpus=1)
        job = make_job(seed=2)
        for task in job.tasks[:3]:
            server.place_task(task)
        assert server.is_overloaded(0.9)
        kinds = server.overloaded_kinds(0.9)
        assert kinds and all(isinstance(k, ResourceKind) for k in kinds)

    def test_would_overload_checks_gpu_too(self):
        server = Server(server_id=0)
        heavy = ResourceVector(gpu=0.95, cpu=1, mem=1, bw=1)
        assert server.would_overload(heavy, threshold=0.9)
        light = ResourceVector(gpu=0.5, cpu=1, mem=1, bw=1)
        assert not server.would_overload(light, threshold=0.9)

    def test_least_loaded_gpu_no_gpus_raises(self):
        server = Server(server_id=0, num_gpus=0, capacity=ResourceVector(0, 8, 8, 8))
        with pytest.raises(RuntimeError):
            server.least_loaded_gpu()


class TestCluster:
    def test_build_shapes(self):
        cluster = Cluster.build(3, 2)
        assert len(cluster) == 3
        assert cluster.total_gpus == 6
        assert all(s.num_gpus == 2 for s in cluster)

    def test_total_capacity(self, small_cluster):
        total = small_cluster.total_capacity()
        assert total.gpu == pytest.approx(16.0)
        assert total.cpu == pytest.approx(4 * 32.0)

    def test_server_lookup(self, small_cluster):
        assert small_cluster.server(2).server_id == 2

    def test_overload_partition(self, small_cluster):
        over = small_cluster.overloaded_servers(0.9)
        under = small_cluster.underloaded_servers(0.9)
        assert len(over) + len(under) == len(small_cluster)

    def test_overload_degree_empty_cluster(self):
        assert Cluster(servers=[]).overload_degree() == 0.0

    def test_is_overloaded_queue_rule(self, small_cluster):
        # Empty cluster, but a non-empty queue flags overload (MLF-C).
        assert small_cluster.is_overloaded(0.9, queue_nonempty=True)
        assert not small_cluster.is_overloaded(0.9, queue_nonempty=False)

    def test_running_tasks_and_find(self, small_cluster):
        job = make_job(seed=4)
        task = worker_task(job)
        small_cluster.server(1).place_task(task)
        assert len(small_cluster.running_tasks()) == 1
        found = small_cluster.find_task_server(task.task_id)
        assert found is not None and found.server_id == 1
        assert small_cluster.find_task_server("nope") is None

    def test_mean_utilization(self, small_cluster):
        job = make_job(seed=4)
        small_cluster.server(0).place_task(worker_task(job))
        mean = mean_utilization(small_cluster.servers)
        assert 0.0 < mean.gpu < 1.0 or mean.cpu > 0.0

    def test_mean_utilization_empty(self):
        assert mean_utilization([]).norm() == 0.0

    def test_cluster_utilization_length(self, small_cluster):
        assert len(small_cluster.cluster_utilization()) == 4
