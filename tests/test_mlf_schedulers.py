"""Behavioural tests for MLF-H, MLF-RL, MLF-C, MLFS and the RL training
pipeline."""

import pytest

from repro.cluster import Cluster
from repro.core import (
    FEATURE_SIZE,
    MLFCController,
    MLFSConfig,
    MLFSScheduler,
    Phase,
    TrainingSetup,
    collect_imitation_data,
    make_mlf_h,
    make_mlf_rl,
    make_mlfs,
    pretrain_policy,
    reinforce_finetune,
)
from repro.core.mlf_h import completion_boosts, order_pool
from repro.rl import ScoringPolicy
from repro.sim import (
    EngineConfig,
    SchedulingContext,
    SimulationSetup,
    run_simulation,
)
from repro.learncurve import AccuracyPredictor, RuntimePredictor
from repro.workload import StopOption, build_jobs, generate_trace
from tests.conftest import make_job


def small_setup(num_jobs=15, seed=1, servers=4, max_days=3):
    records = generate_trace(num_jobs, duration_seconds=1800.0, seed=seed)
    return SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(servers, 4),
        workload_seed=seed + 1,
        engine_config=EngineConfig(max_time=max_days * 24 * 3600.0),
    )


def make_ctx(jobs, cluster, now=0.0, queue=None):
    return SchedulingContext(
        now=now,
        cluster=cluster,
        queue=queue if queue is not None else [t for j in jobs for t in j.queued_tasks()],
        active_jobs=jobs,
        overload_threshold=0.9,
        system_overload_threshold=0.9,
        accuracy_predictor=AccuracyPredictor(noise_std=0.0),
        runtime_predictor=RuntimePredictor(cold_error_std=0.0, warm_error_std=0.0),
    )


class TestOrderingHelpers:
    def test_order_pool_groups_jobs(self):
        a = make_job(seed=1, job_id="a", gpus=4)
        b = make_job(seed=2, job_id="b", gpus=4)
        pool = a.tasks + b.tasks
        scores = {t.task_id: (2.0 if t.job_id == "b" else 1.0) for t in pool}
        ordered = order_pool(pool, scores)
        job_sequence = [t.job_id for t in ordered]
        # b's tasks first, contiguous; then a's tasks contiguous.
        switch = job_sequence.index("a")
        assert all(j == "b" for j in job_sequence[:switch])
        assert all(j == "a" for j in job_sequence[switch:])

    def test_completion_boost_only_partial(self):
        job = make_job(seed=3)
        assert completion_boosts([job]) == {}
        job.tasks[0].mark_placed(0.0, 0, 0)
        boosts = completion_boosts([job])
        assert job.job_id in boosts and boosts[job.job_id] > 1.0
        for task in job.tasks:
            if not task.is_placed:
                task.mark_placed(0.0, 0, 0)
        assert completion_boosts([job]) == {}


class TestMLFH:
    def test_simulation_completes_all_jobs(self):
        result = run_simulation(make_mlf_h(), small_setup())
        assert result.summary()["jobs"] == 15

    def test_places_whole_jobs(self):
        jobs = build_jobs(generate_trace(3, duration_seconds=10.0, seed=4), seed=5)
        for job in jobs:
            for task in job.tasks:
                task.mark_queued(0.0)
        cluster = Cluster.build(6, 4)
        scheduler = make_mlf_h()
        ctx = make_ctx(jobs, cluster)
        decision = scheduler.on_schedule(ctx)
        placed_by_job = {}
        for p in decision.placements:
            placed_by_job.setdefault(p.task.job_id, 0)
            placed_by_job[p.task.job_id] += 1
        for job in jobs:
            count = placed_by_job.get(job.job_id, 0)
            assert count in (0, len(job.tasks))  # all-or-nothing

    def test_respects_overload_threshold(self):
        jobs = build_jobs(generate_trace(2, duration_seconds=10.0, seed=6), seed=7)
        for job in jobs:
            for task in job.tasks:
                task.mark_queued(0.0)
        cluster = Cluster.build(4, 4)
        scheduler = make_mlf_h()
        decision = scheduler.on_schedule(make_ctx(jobs, cluster))
        # Apply and verify no server exceeds the threshold on estimates.
        from repro.sim.shadow import ShadowCluster

        shadow = ShadowCluster(cluster)
        for p in decision.placements:
            shadow.commit_placement(p.task, p.server_id, p.gpu_id or 0)
        # Estimated (planning) load must respect h_r; the *actual* load
        # may exceed it, which is what triggers migration later.
        for server in cluster.servers:
            util = shadow.utilization(server)
            assert util.gpu <= 1.0 + 1e-6

    def test_decision_recorder_collects(self):
        setup = small_setup(num_jobs=10, seed=8)
        training = TrainingSetup(
            records=setup.records,
            cluster_factory=setup.cluster_factory,
            config=MLFSConfig(enable_load_control=False),
            engine_config=setup.engine_config,
            workload_seed=setup.workload_seed,
        )
        buffer = collect_imitation_data(training)
        assert len(buffer) > 0
        decision = next(iter(buffer))
        assert decision.features.shape[1] == FEATURE_SIZE

    def test_migration_disabled_by_config(self):
        config = MLFSConfig(enable_migration=False, enable_load_control=False)
        result = run_simulation(
            make_mlf_h(config), small_setup(num_jobs=25, seed=9, servers=2)
        )
        assert result.metrics.num_migrations == 0


class TestMLFRL:
    def test_without_policy_matches_heuristic_family(self):
        result = run_simulation(make_mlf_rl(), small_setup(seed=10))
        assert result.summary()["jobs"] == 15

    def test_with_policy_runs(self):
        policy = ScoringPolicy(feature_size=FEATURE_SIZE, seed=1)
        result = run_simulation(make_mlf_rl(policy), small_setup(seed=11))
        assert result.summary()["jobs"] == 15

    def test_feature_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_mlf_rl(ScoringPolicy(feature_size=3, seed=1))

    def test_explore_records_trajectory(self):
        policy = ScoringPolicy(feature_size=FEATURE_SIZE, seed=1)
        from repro.core.mlf_rl import MLFRLScheduler

        scheduler = MLFRLScheduler(
            config=MLFSConfig(enable_load_control=False),
            policy=policy,
            explore=True,
        )
        setup = small_setup(seed=12)
        jobs = build_jobs(setup.records, seed=setup.workload_seed)
        from repro.sim import SimulationEngine

        engine = SimulationEngine(
            scheduler, jobs, setup.cluster_factory(), setup.engine_config
        )
        engine.run()
        trajectory = scheduler.reset_trajectory()
        assert len(trajectory) > 0
        assert len(scheduler.trajectory) == 0


class TestMLFC:
    def test_effective_option_downgrade_ladder(self):
        controller = MLFCController(config=MLFSConfig())
        job = make_job(seed=13)
        job.allow_downgrade = True
        job.stop_option = StopOption.FIXED_ITERATIONS
        assert (
            controller.effective_option(job, overloaded=True)
            is StopOption.OPT_STOP
        )
        job.stop_option = StopOption.OPT_STOP
        assert (
            controller.effective_option(job, overloaded=True)
            is StopOption.ACCURACY_ONLY
        )
        job.stop_option = StopOption.ACCURACY_ONLY
        assert (
            controller.effective_option(job, overloaded=True)
            is StopOption.ACCURACY_ONLY
        )

    def test_no_downgrade_without_permission(self):
        controller = MLFCController(config=MLFSConfig())
        job = make_job(seed=13)
        job.allow_downgrade = False
        job.stop_option = StopOption.FIXED_ITERATIONS
        assert (
            controller.effective_option(job, overloaded=True)
            is StopOption.FIXED_ITERATIONS
        )

    def test_not_overloaded_keeps_user_choice(self):
        controller = MLFCController(config=MLFSConfig())
        job = make_job(seed=13)
        job.stop_option = StopOption.OPT_STOP
        assert (
            controller.effective_option(job, overloaded=False)
            is StopOption.OPT_STOP
        )

    def test_stops_job_that_met_requirement(self):
        controller = MLFCController(config=MLFSConfig())
        cluster = Cluster.build(2, 4)
        job = make_job(seed=14, iterations=50)
        job.stop_option = StopOption.ACCURACY_ONLY
        job.effective_stop_option = StopOption.ACCURACY_ONLY
        job.accuracy_requirement = job.accuracy_at(5)
        job.iterations_completed = 10
        ctx = make_ctx([job], cluster, queue=[])
        stops = controller.apply(ctx)
        assert [s.job.job_id for s in stops] == [job.job_id]

    def test_disabled_controller_never_stops(self):
        controller = MLFCController(
            config=MLFSConfig(enable_load_control=False)
        )
        cluster = Cluster.build(2, 4)
        job = make_job(seed=14, iterations=50)
        job.iterations_completed = 45
        ctx = make_ctx([job], cluster, queue=[])
        assert controller.apply(ctx) == []

    def test_backlog_predicate_ignores_fresh_tasks(self):
        controller = MLFCController(config=MLFSConfig(), queue_wait_threshold=300.0)
        cluster = Cluster.build(4, 4)
        job = make_job(seed=15)
        for task in job.tasks:
            task.mark_queued(0.0)
        # Fresh queue at t=0: not overloaded.
        assert not controller.system_overloaded(make_ctx([job], cluster, now=0.0))
        # Same queue after 10 minutes: genuine backlog.
        assert controller.system_overloaded(make_ctx([job], cluster, now=600.0))


class TestMLFS:
    def test_full_system_runs(self):
        result = run_simulation(make_mlfs(), small_setup(seed=16))
        assert result.summary()["jobs"] == 15

    def test_starts_in_rl_phase_with_policy(self):
        policy = ScoringPolicy(feature_size=FEATURE_SIZE, seed=2)
        scheduler = make_mlfs(policy)
        assert scheduler.phase is Phase.RL

    def test_starts_heuristic_without_policy(self):
        scheduler = make_mlfs()
        assert scheduler.phase is Phase.HEURISTIC

    def test_auto_switch_after_enough_decisions(self):
        config = MLFSConfig(rl_switch_decisions=50)
        scheduler = MLFSScheduler(config=config)
        setup = small_setup(num_jobs=30, seed=17, servers=3)
        jobs = build_jobs(setup.records, seed=setup.workload_seed)
        from repro.sim import SimulationEngine

        engine = SimulationEngine(
            scheduler, jobs, setup.cluster_factory(), setup.engine_config
        )
        engine.run()
        assert len(scheduler.imitation_buffer) >= 50
        assert scheduler.phase is Phase.RL

    def test_mlfs_stops_jobs_early_under_overload(self):
        result = run_simulation(
            make_mlfs(), small_setup(num_jobs=40, seed=18, servers=2)
        )
        stopped = [r for r in result.metrics.job_records if r.stopped_early]
        assert stopped  # MLF-C fired


class TestTrainingPipeline:
    def test_pretrain_reaches_agreement(self):
        setup = small_setup(num_jobs=20, seed=19)
        training = TrainingSetup(
            records=setup.records,
            cluster_factory=setup.cluster_factory,
            config=MLFSConfig(enable_load_control=False),
            engine_config=setup.engine_config,
            workload_seed=setup.workload_seed,
        )
        buffer = collect_imitation_data(training)
        policy, stats = pretrain_policy(buffer, epochs=2)
        assert stats["agreement"] > 0.5
        assert policy.feature_size == FEATURE_SIZE

    def test_reinforce_finetune_runs(self):
        setup = small_setup(num_jobs=8, seed=20)
        training = TrainingSetup(
            records=setup.records,
            cluster_factory=setup.cluster_factory,
            config=MLFSConfig(enable_load_control=False),
            engine_config=setup.engine_config,
            workload_seed=setup.workload_seed,
        )
        policy = ScoringPolicy(feature_size=FEATURE_SIZE, seed=3)
        history = reinforce_finetune(policy, training, episodes=2)
        assert len(history) == 2
