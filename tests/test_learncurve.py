"""Unit tests for curve fitting, the ensemble, predictors and OptStop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.learncurve import (
    CURVE_FAMILIES,
    AccuracyPredictor,
    CurveEnsemble,
    OptStopPolicy,
    RuntimePredictor,
    StopDecision,
    fit_ensemble,
    fit_family,
)
from repro.workload import StopOption
from tests.conftest import make_job


def saturating_curve(x, ceiling=0.9, half=8.0):
    return ceiling * x / (x + half)


class TestCurveFamilies:
    def test_four_families(self):
        assert len(CURVE_FAMILIES) == 4
        assert {f.name for f in CURVE_FAMILIES} == {
            "pow3",
            "log_power",
            "vapor_pressure",
            "mmf",
        }

    def test_fit_recovers_mmf(self):
        family = next(f for f in CURVE_FAMILIES if f.name == "mmf")
        xs = list(range(1, 15))
        ys = [saturating_curve(x) for x in xs]
        params, err = fit_family(family, xs, ys)
        assert err < 1e-3
        assert family(np.array([100.0]), params)[0] == pytest.approx(
            saturating_curve(100.0), abs=0.05
        )

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            fit_family(CURVE_FAMILIES[0], [], [])

    def test_fit_deterministic(self):
        xs = [1, 2, 3, 4, 5]
        ys = [0.2, 0.35, 0.45, 0.5, 0.55]
        a = fit_family(CURVE_FAMILIES[0], xs, ys)
        b = fit_family(CURVE_FAMILIES[0], xs, ys)
        assert a == b


class TestEnsemble:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            CurveEnsemble.fit([1], [0.5])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            CurveEnsemble.fit([1, 2], [0.5])

    def test_weights_sum_to_one(self):
        xs = list(range(1, 10))
        ys = [saturating_curve(x) for x in xs]
        ensemble = fit_ensemble(xs, ys)
        assert sum(m.weight for m in ensemble.members) == pytest.approx(1.0)

    def test_extrapolation_close_to_truth(self):
        xs = list(range(1, 12))
        ys = [saturating_curve(x) for x in xs]
        ensemble = fit_ensemble(xs, ys)
        predicted = ensemble.predict(40)
        assert predicted == pytest.approx(saturating_curve(40), abs=0.08)

    def test_prediction_clamped_to_unit_interval(self):
        ensemble = fit_ensemble([1, 2, 3, 4], [0.9, 0.95, 0.97, 0.99])
        assert 0.0 <= ensemble.predict(1000) <= 1.0

    def test_std_positive(self):
        xs = list(range(1, 8))
        ys = [saturating_curve(x) for x in xs]
        ensemble = fit_ensemble(xs, ys)
        assert ensemble.predict_std(30) > 0.0

    def test_confidence_below_monotone_in_threshold(self):
        xs = list(range(1, 8))
        ys = [saturating_curve(x) for x in xs]
        ensemble = fit_ensemble(xs, ys)
        low = ensemble.confidence_below(30, 0.2)
        high = ensemble.confidence_below(30, 0.99)
        assert low < high

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_fit_never_crashes_on_noiseless_curves(self, n):
        xs = list(range(1, n + 1))
        ys = [saturating_curve(x) for x in xs]
        ensemble = fit_ensemble(xs, ys)
        assert 0.0 <= ensemble.predict(n * 2) <= 1.0


class TestAccuracyPredictor:
    def test_observe_and_predict_noiseless(self):
        predictor = AccuracyPredictor(noise_std=0.0)
        job = make_job(seed=1, iterations=40)
        for i in range(1, 8):
            predictor.observe(job, i)
        predicted = predictor.predict(job, 40)
        assert predicted == pytest.approx(job.accuracy_at(40), abs=0.05)

    def test_noisy_observation_bounded(self):
        predictor = AccuracyPredictor(noise_std=0.05, seed=3)
        job = make_job(seed=1)
        for i in range(1, 6):
            value = predictor.observe(job, i)
            assert 0.0 <= value <= 1.0

    def test_fallback_before_min_observations(self):
        predictor = AccuracyPredictor(noise_std=0.0, min_observations=10)
        job = make_job(seed=1)
        predictor.observe(job, 1)
        assert predictor.predict(job, 20) == pytest.approx(
            job.accuracy_at(20), abs=0.02
        )

    def test_predict_without_observations_uses_curve(self):
        predictor = AccuracyPredictor()
        job = make_job(seed=2)
        assert predictor.predict(job, 10) == pytest.approx(job.accuracy_at(10))

    def test_forget_clears_state(self):
        predictor = AccuracyPredictor()
        job = make_job(seed=2)
        predictor.observe(job, 1)
        assert predictor.observations(job) == 1
        predictor.forget(job)
        assert predictor.observations(job) == 0

    def test_confidence_below(self):
        predictor = AccuracyPredictor(noise_std=0.0)
        job = make_job(seed=2, iterations=40)
        for i in range(1, 8):
            predictor.observe(job, i)
        # Achievable accuracy is well below 0.999.
        assert predictor.confidence_below(job, 40, 0.999) > 0.5


class TestRuntimePredictor:
    def test_cold_prediction_uses_estimate(self):
        predictor = RuntimePredictor(cold_error_std=0.0, warm_error_std=0.0)
        job = make_job(seed=3, iterations=10)
        total = predictor.total_time(job)
        assert total == pytest.approx(job.estimated_duration, rel=1e-6)

    def test_cold_factor_sticky(self):
        predictor = RuntimePredictor(cold_error_std=0.3, seed=1)
        job = make_job(seed=3)
        assert predictor.iteration_time(job) == predictor.iteration_time(job)

    def test_warm_prediction_tracks_observations(self):
        predictor = RuntimePredictor(warm_error_std=0.0)
        job = make_job(seed=3, iterations=10)
        for _ in range(5):
            predictor.observe_iteration(job, 120.0)
        assert predictor.iteration_time(job) == pytest.approx(120.0)
        job.iterations_completed = 4
        assert predictor.remaining_time(job) == pytest.approx(6 * 120.0)

    def test_negative_duration_rejected(self):
        predictor = RuntimePredictor()
        with pytest.raises(ValueError):
            predictor.observe_iteration(make_job(seed=3), -1.0)

    def test_remaining_zero_when_done(self):
        predictor = RuntimePredictor()
        job = make_job(seed=3, iterations=10)
        job.iterations_completed = 10
        assert predictor.remaining_time(job) == 0.0

    def test_window_limits_memory(self):
        predictor = RuntimePredictor(window=4, warm_error_std=0.0)
        job = make_job(seed=3)
        for value in [100.0] * 10 + [10.0] * 4:
            predictor.observe_iteration(job, value)
        assert predictor.iteration_time(job) == pytest.approx(10.0)

    def test_forget(self):
        predictor = RuntimePredictor()
        job = make_job(seed=3)
        predictor.observe_iteration(job, 5.0)
        predictor.forget(job)
        assert not predictor.has_history(job)


class TestOptStop:
    def make_ready_job(self, option, seed=4, iterations=60):
        job = make_job(seed=seed, iterations=iterations)
        job.stop_option = option
        job.effective_stop_option = option
        return job

    def observed_predictor(self, job, upto):
        predictor = AccuracyPredictor(noise_std=0.0)
        for i in range(1, upto + 1):
            predictor.observe(job, i)
        return predictor

    def test_fixed_iterations_never_stops(self):
        job = self.make_ready_job(StopOption.FIXED_ITERATIONS)
        job.iterations_completed = 50
        predictor = self.observed_predictor(job, 50)
        policy = OptStopPolicy()
        assert (
            policy.evaluate(job, predictor, job.current_accuracy)
            is StopDecision.CONTINUE
        )

    def test_accuracy_only_stops_at_requirement(self):
        job = self.make_ready_job(StopOption.ACCURACY_ONLY)
        job.accuracy_requirement = job.accuracy_at(10)
        job.iterations_completed = 12
        predictor = self.observed_predictor(job, 12)
        policy = OptStopPolicy()
        assert (
            policy.evaluate(job, predictor, job.current_accuracy)
            is StopDecision.STOP_TARGET_REACHED
        )

    def test_min_iterations_guard(self):
        job = self.make_ready_job(StopOption.ACCURACY_ONLY)
        job.accuracy_requirement = 0.0001
        job.iterations_completed = 1
        predictor = self.observed_predictor(job, 1)
        policy = OptStopPolicy(min_iterations=3)
        assert (
            policy.evaluate(job, predictor, job.current_accuracy)
            is StopDecision.CONTINUE
        )

    def test_optstop_stops_near_plateau(self):
        job = self.make_ready_job(StopOption.OPT_STOP, iterations=300)
        # Drive the job deep into the plateau.
        job.iterations_completed = 290
        predictor = self.observed_predictor(job, 290)
        policy = OptStopPolicy()
        decision = policy.evaluate(job, predictor, job.current_accuracy)
        assert decision is StopDecision.STOP_TARGET_REACHED

    def test_optstop_continues_early(self):
        job = self.make_ready_job(StopOption.OPT_STOP, iterations=100)
        job.iterations_completed = 5
        predictor = self.observed_predictor(job, 5)
        policy = OptStopPolicy()
        assert (
            policy.evaluate(job, predictor, job.current_accuracy)
            is StopDecision.CONTINUE
        )

    def test_unreachable_abort_requires_margin_and_confidence(self):
        job = self.make_ready_job(StopOption.ACCURACY_ONLY, iterations=20)
        # Requirement far above what 20 iterations can reach.
        job.accuracy_requirement = min(0.99, job.accuracy_ceiling * 0.999)
        job.iterations_completed = 10
        predictor = self.observed_predictor(job, 10)
        policy = OptStopPolicy(confidence_threshold=0.5)
        decision = policy.evaluate(job, predictor, job.current_accuracy)
        assert decision in (StopDecision.STOP_UNREACHABLE, StopDecision.CONTINUE)

    def test_optimal_stop_iteration_bounds(self):
        job = self.make_ready_job(StopOption.OPT_STOP, iterations=50)
        job.iterations_completed = 6
        predictor = self.observed_predictor(job, 6)
        policy = OptStopPolicy()
        stop = policy.optimal_stop_iteration(job, predictor)
        assert 1 <= stop <= job.max_iterations

    def test_target_accuracy_fixed_is_infinite(self):
        job = self.make_ready_job(StopOption.FIXED_ITERATIONS)
        policy = OptStopPolicy()
        predictor = AccuracyPredictor(noise_std=0.0)
        assert policy.target_accuracy(job, predictor) == float("inf")
