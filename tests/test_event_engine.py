"""Tests for the event-driven engine core and the time-based stepping API.

Covers the PR-9 redesign: ``pass_policy="event"`` outcome-equivalence
against the fixed cadence (including under fault plans and as a
hypothesis sweep), the ``advance``/``run_until``/``fast_forward``
surface, the ``step()``/``RoundResult`` deprecation shims, the
lazy-deletion :class:`TaskQueue`, mid-heap snapshot/restore
bit-identity, and the daemon's ``step until=``/``events=`` verb modes.
"""

from __future__ import annotations

import pickle
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FIFOScheduler
from repro.cluster import Cluster
from repro.core import make_mlf_h
from repro.faults import FaultEvent, FaultPlan
from repro.service import (
    JobSpec,
    SchedulerService,
    ServiceClient,
    ServiceError,
    ServiceConfig,
)
from repro.service.daemon import ThreadedDaemon
from repro.sim import EngineConfig, SimulationEngine
from repro.sim.engine import PassResult, TaskQueue
from repro.workload import build_jobs, generate_trace
from tests.conftest import make_job

WEEK = 7 * 24 * 3600.0


def build_engine(pass_policy, num_jobs=16, servers=4, seed=21, **engine_kwargs):
    records = generate_trace(num_jobs, duration_seconds=1800.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(servers, 4)
    config = EngineConfig(max_time=WEEK, seed=seed, pass_policy=pass_policy)
    return SimulationEngine(make_mlf_h(), jobs, cluster, config, **engine_kwargs)


def job_tuples(metrics):
    return sorted(
        (r.job_id, r.jct, r.completion_time, r.iterations_completed, r.final_accuracy)
        for r in metrics.job_records
    )


# ---------------------------------------------------------------------------
# Event-driven passes: outcome-identical to the fixed cadence
# ---------------------------------------------------------------------------


class TestEventEquivalence:
    def test_event_matches_fixed_outcomes(self):
        fixed = build_engine("fixed")
        event = build_engine("event")
        assert job_tuples(fixed.run()) == job_tuples(event.run())

    def test_event_runs_fewer_passes(self):
        fixed = build_engine("fixed")
        event = build_engine("event")
        fixed.run()
        event.run()
        assert event.pass_index < fixed.pass_index

    def test_non_parkable_scheduler_behaves_like_fixed(self):
        # FIFO does not declare ``event_parkable``, so the event policy
        # must not skip any pass for it.
        def run(policy):
            records = generate_trace(8, duration_seconds=1800.0, seed=3)
            jobs = build_jobs(records, seed=4)
            engine = SimulationEngine(
                FIFOScheduler(),
                jobs,
                Cluster.build(3, 4),
                EngineConfig(max_time=WEEK, pass_policy=policy),
            )
            metrics = engine.run()
            return engine.pass_index, job_tuples(metrics)

        fixed_passes, fixed_jobs = run("fixed")
        event_passes, event_jobs = run("event")
        assert event_passes == fixed_passes
        assert event_jobs == fixed_jobs

    def test_event_matches_fixed_under_faults(self):
        # Armed fault events must unpark the pass timer: a crash during
        # a quiet stretch still fires (and kills) on schedule.
        plan = FaultPlan(
            events=(
                FaultEvent(round_index=3, kind="server_crash", server_id=1),
                FaultEvent(round_index=9, kind="server_revive", server_id=1),
                FaultEvent(round_index=5, kind="gpu_fail", server_id=0, gpu_id=2),
                FaultEvent(round_index=12, kind="gpu_revive", server_id=0, gpu_id=2),
            ),
        )
        fixed = build_engine("fixed", faults=plan)
        event = build_engine("event", faults=plan)
        assert job_tuples(fixed.run()) == job_tuples(event.run())

    @pytest.mark.slow
    @given(
        num_jobs=st.integers(min_value=1, max_value=12),
        servers=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=15, deadline=None)
    def test_event_equivalence_property(self, num_jobs, servers, seed):
        """Park/unpark never changes outcomes, whatever the workload."""
        fixed = build_engine("fixed", num_jobs=num_jobs, servers=servers, seed=seed)
        event = build_engine("event", num_jobs=num_jobs, servers=servers, seed=seed)
        assert job_tuples(fixed.run()) == job_tuples(event.run())


# ---------------------------------------------------------------------------
# Time-based stepping API
# ---------------------------------------------------------------------------


class TestTimeBasedApi:
    def test_run_until_advances_clock_to_bound(self):
        engine = build_engine("fixed")
        results = engine.run_until(3600.0)
        assert engine.now == 3600.0
        assert results
        assert all(r.sim_time <= 3600.0 for r in results)

    def test_chunked_run_until_matches_run(self):
        whole = build_engine("fixed")
        metrics = whole.run()

        chunked = build_engine("fixed")
        t = 1800.0
        while True:
            results = chunked.run_until(t)
            if any(r.drained for r in results):
                break
            t += 1800.0
        chunked.finalize()
        assert job_tuples(chunked.metrics) == job_tuples(metrics)

    def test_fast_forward_clamps_and_never_rewinds(self):
        engine = build_engine("fixed")
        engine.start()
        engine.fast_forward(120.0)
        assert engine.now == 120.0
        engine.fast_forward(60.0)  # never rewinds
        assert engine.now == 120.0
        engine.fast_forward(WEEK * 100)  # clamped to max_time
        assert engine.now == engine.config.max_time

    def test_step_shim_warns_and_matches_advance(self):
        engine = build_engine("fixed")
        engine.start()
        with pytest.warns(DeprecationWarning, match="advance"):
            first = engine.step()
        assert isinstance(first, PassResult)
        # The shim is advance() exactly: a full step loop reproduces run().
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            while True:
                result = engine.step()
                if result.drained or result.events_processed == 0:
                    break
        engine.finalize()
        assert job_tuples(engine.metrics) == job_tuples(build_engine("fixed").run())

    def test_roundresult_alias_warns_and_is_passresult(self):
        with pytest.warns(DeprecationWarning, match="PassResult"):
            from repro.sim.engine import RoundResult
        assert RoundResult is PassResult

    def test_passresult_compat_properties(self):
        engine = build_engine("fixed")
        result = engine.advance()
        assert result.round_index == result.pass_index
        assert result.now == result.sim_time


# ---------------------------------------------------------------------------
# TaskQueue: lazy-deletion FIFO
# ---------------------------------------------------------------------------


class TestTaskQueue:
    def _tasks(self, n, prefix="j"):
        return [make_job(job_id=f"{prefix}{i}", gpus=1).tasks[0] for i in range(n)]

    def test_fifo_order_preserved(self):
        tasks = self._tasks(5)
        queue = TaskQueue(tasks)
        assert [t.task_id for t in queue] == [t.task_id for t in tasks]
        assert len(queue) == 5

    def test_remove_is_order_preserving(self):
        tasks = self._tasks(4)
        queue = TaskQueue(tasks)
        queue.remove(tasks[1])
        assert [t.task_id for t in queue] == [
            tasks[0].task_id,
            tasks[2].task_id,
            tasks[3].task_id,
        ]
        assert tasks[1] not in queue
        assert tasks[0] in queue

    def test_requeue_after_removal_lands_at_tail(self):
        tasks = self._tasks(3)
        queue = TaskQueue(tasks)
        queue.remove(tasks[0])
        queue.append(tasks[0])
        assert [t.task_id for t in queue] == [
            tasks[1].task_id,
            tasks[2].task_id,
            tasks[0].task_id,
        ]

    def test_duplicate_append_rejected(self):
        tasks = self._tasks(2)
        queue = TaskQueue(tasks)
        with pytest.raises(ValueError):
            queue.append(tasks[0])

    def test_remove_missing_rejected(self):
        queue = TaskQueue(self._tasks(2))
        stranger = make_job(job_id="stranger", gpus=1).tasks[0]
        with pytest.raises(ValueError):
            queue.remove(stranger)

    def test_compaction_bounds_backing_list(self):
        tasks = self._tasks(300)
        queue = TaskQueue(tasks)
        for task in tasks[:250]:
            queue.remove(task)
        assert len(queue) == 50
        # Lazy deletion compacts once half the entries are dead, so the
        # backing list cannot retain all 250 tombstones.
        assert len(queue._items) < 300
        assert [t.task_id for t in queue] == [t.task_id for t in tasks[250:]]

    def test_eq_against_lists(self):
        tasks = self._tasks(3)
        queue = TaskQueue(tasks)
        assert queue == tasks
        queue.remove(tasks[0])
        assert queue == tasks[1:]
        assert TaskQueue(tasks[1:]) == queue
        assert bool(TaskQueue()) is False


# ---------------------------------------------------------------------------
# Mid-heap snapshot/restore
# ---------------------------------------------------------------------------


class TestMidHeapSnapshot:
    def test_pickled_engine_resumes_bit_identically(self):
        """Snapshot taken mid-run — with arrivals still in the heap and
        fault events still pending — resumes to the exact outcome."""
        plan = FaultPlan(
            events=(
                FaultEvent(round_index=2, kind="server_crash", server_id=0),
                FaultEvent(round_index=20, kind="server_revive", server_id=0),
            ),
        )
        baseline = build_engine("event", num_jobs=12, seed=9, faults=plan)
        expected = job_tuples(baseline.run())

        engine = build_engine("event", num_jobs=12, seed=9, faults=plan)
        engine.start()
        for _ in range(5):
            engine.advance()
        # The cut is genuinely mid-stream: future arrivals and the
        # revive event are still pending.
        assert any(j.arrival_time > engine.now for j in engine.jobs)
        assert engine.now < baseline.now
        blob = pickle.dumps(engine)

        restored = pickle.loads(blob)
        while True:
            result = restored.advance()
            if result.drained or result.events_processed == 0:
                break
        restored.finalize()
        assert job_tuples(restored.metrics) == expected

    def test_divergence_free_double_restore(self):
        """Restoring the same blob twice yields the same continuation —
        the pickled heap and RNG carry the whole future."""
        engine = build_engine("event", num_jobs=10, seed=17)
        engine.start()
        for _ in range(4):
            engine.advance()
        blob = pickle.dumps(engine)

        outcomes = []
        for _ in range(2):
            restored = pickle.loads(blob)
            while True:
                result = restored.advance()
                if result.drained or result.events_processed == 0:
                    break
            restored.finalize()
            outcomes.append(job_tuples(restored.metrics))
        assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------------
# Daemon step verb: until= / events= modes
# ---------------------------------------------------------------------------


def _daemon_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        socket_path=str(tmp_path / "repro.sock"),
        servers=4,
        gpus_per_server=4,
        seed=7,
        round_interval=0.0,
        snapshot_dir=None,
        telemetry_path=None,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestDaemonStepModes:
    def test_step_until_fast_forwards_sim_time(self, tmp_path):
        with ThreadedDaemon(_daemon_config(tmp_path)) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                client.submit(
                    JobSpec(model_name="svm", gpus_requested=1, max_iterations=3)
                )
                out = client.step(until=3600.0)
                assert out["sim_time"] == 3600.0
                assert out["passes"] >= 1
                assert out["events_processed"] >= 1

    def test_step_events_processes_at_least_n(self, tmp_path):
        with ThreadedDaemon(_daemon_config(tmp_path)) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                client.submit(
                    JobSpec(model_name="svm", gpus_requested=1, max_iterations=3)
                )
                out = client.step(events=2)
                assert out["events_processed"] >= 2

    def test_step_until_and_events_mutually_exclusive(self, tmp_path):
        with ThreadedDaemon(_daemon_config(tmp_path)) as daemon:
            with ServiceClient(daemon.socket_path) as client:
                # Client-side guard...
                with pytest.raises(ValueError):
                    client.step(until=60.0, events=5)
                # ...and the wire protocol enforces it for raw clients.
                with pytest.raises(ServiceError):
                    client.call("step", until=60.0, events=5)

    def test_event_policy_daemon_emits_v2_telemetry(self, tmp_path):
        telemetry_path = tmp_path / "telemetry.jsonl"
        config = _daemon_config(
            tmp_path,
            telemetry_path=str(telemetry_path),
            pass_policy="event",
        )
        core = SchedulerService(config)
        core.submit(JobSpec(model_name="svm", gpus_requested=1, max_iterations=3))
        core.drain()
        records = core.telemetry.records
        assert records
        assert all(r["v"] == 2 for r in records)
        assert all("pass_index" in r and "round" not in r for r in records)
