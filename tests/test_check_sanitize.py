"""Unit tests for the runtime invariant sanitizer (``repro.check.sanitize``).

Each invariant gets a test that constructs a concretely violating state
and asserts the raised :class:`InvariantViolation` names the culprit
entity.  The headline acceptance case injects a GPU leak (load retained
after a task left) and checks the violation identifies the leaking
server.
"""

from __future__ import annotations

import pickle

import pytest

from repro.check.sanitize import (
    InvariantViolation,
    Sanitizer,
    SanitizingCluster,
    check_cluster_conservation,
    check_dequeue_order,
    check_queue_consistency,
    check_snapshot_roundtrip,
    engine_state_digest,
    sanitize_from_env,
)
from repro.cluster import Cluster, ResourceVector
from repro.sim import EngineConfig, Placement, Scheduler, SchedulerDecision, SimulationEngine
from repro.workload import TaskState, build_jobs, generate_trace
from tests.conftest import make_job


class NeverPlace(Scheduler):
    """Module-level (hence picklable) scheduler that places nothing."""

    name = "never-place"

    def on_schedule(self, ctx):
        return SchedulerDecision()


class FirstFit(Scheduler):
    """Module-level (hence picklable) first-fit placing scheduler."""

    name = "first-fit"

    def on_schedule(self, ctx):
        from repro.sim.shadow import ShadowCluster

        decision = SchedulerDecision()
        shadow = ShadowCluster(ctx.cluster)
        for task in ctx.queue:
            for server in ctx.cluster.servers:
                if not shadow.would_overload(server, task.demand, 0.95):
                    gpu = shadow.least_loaded_gpu(server)
                    shadow.commit_placement(task, server.server_id, gpu)
                    decision.placements.append(Placement(task, server.server_id, gpu))
                    break
        return decision


def place(cluster: Cluster, task, server_id: int) -> None:
    """Host a task on a server the way the engine does."""
    server = cluster.server(server_id)
    gpu = server.place_task(task)
    task.mark_placed(0.0, server_id, gpu.gpu_id)


def small_engine(
    seed: int = 3, sanitize: bool = False, scheduler: Scheduler = None
) -> SimulationEngine:  # repro-lint: disable=TYP001
    records = generate_trace(3, duration_seconds=600.0, seed=seed)
    jobs = build_jobs(records, seed=seed + 1)
    cluster = Cluster.build(3, 4)
    # Cap max_time: NeverPlace never drains, and a sanitized run audits
    # every one of the default 60-day run's ~86k rounds.
    config = EngineConfig(seed=seed, max_time=1800.0)
    return SimulationEngine(
        scheduler or NeverPlace(), jobs, cluster, config, sanitize=sanitize
    )


class TestResourceConservation:
    def test_clean_cluster_passes(self):
        cluster = Cluster.build(2, 4)
        job = make_job(seed=5)
        for task in job.tasks:
            place(cluster, task, 0)
        check_cluster_conservation(cluster)

    def test_injected_gpu_leak_names_leaking_server(self):
        # The acceptance scenario: server 1's ledger retains GPU load
        # that no hosted task accounts for (a botched eviction).
        cluster = Cluster.build(3, 4)
        job = make_job(seed=5)
        place(cluster, job.tasks[0], 1)
        leaky = cluster.server(1)
        leaky._load = leaky._load + ResourceVector(gpu=1.0)
        with pytest.raises(InvariantViolation) as exc:
            check_cluster_conservation(cluster)
        violation = exc.value
        assert violation.invariant == "resource-conservation"
        assert violation.server_id == 1
        assert violation.detail["resource"] == "gpu"
        assert "server=1" in str(violation)

    def test_gpu_device_leak_names_device(self):
        cluster = Cluster.build(2, 4)
        job = make_job(seed=5)
        task = job.tasks[0]
        place(cluster, task, 0)
        gpu = cluster.server(0).gpus[task.gpu_id]
        gpu._load += 0.5
        with pytest.raises(InvariantViolation) as exc:
            check_cluster_conservation(cluster)
        assert exc.value.invariant == "resource-conservation"
        assert exc.value.server_id == 0
        assert exc.value.gpu_id == task.gpu_id

    def test_double_free_detected(self):
        # Removing a task twice would drive the ledger below the hosted
        # sum; emulate by zeroing the ledger while the task stays.
        cluster = Cluster.build(2, 4)
        job = make_job(seed=5)
        place(cluster, job.tasks[0], 0)
        cluster.server(0)._load = ResourceVector.zeros()
        with pytest.raises(InvariantViolation) as exc:
            check_cluster_conservation(cluster)
        assert exc.value.invariant == "resource-conservation"
        assert exc.value.server_id == 0


class TestPlacementConsistency:
    def test_stale_back_pointer(self):
        cluster = Cluster.build(2, 4)
        job = make_job(seed=5)
        task = job.tasks[0]
        place(cluster, task, 0)
        task.server_id = 1  # points at the wrong server
        with pytest.raises(InvariantViolation) as exc:
            check_cluster_conservation(cluster)
        assert exc.value.invariant == "placement-consistency"
        assert exc.value.task_id == task.task_id
        assert exc.value.server_id == 0

    def test_hosted_task_not_running(self):
        cluster = Cluster.build(2, 4)
        job = make_job(seed=5)
        task = job.tasks[0]
        place(cluster, task, 0)
        task.state = TaskState.QUEUED
        with pytest.raises(InvariantViolation) as exc:
            check_cluster_conservation(cluster)
        assert exc.value.invariant == "placement-consistency"
        assert exc.value.task_id == task.task_id

    def test_gpu_membership_mismatch(self):
        cluster = Cluster.build(2, 4)
        job = make_job(seed=5)
        task = job.tasks[0]
        place(cluster, task, 0)
        gpu = cluster.server(0).gpus[task.gpu_id]
        # The GPU forgets the task but the server still hosts it.
        del gpu._tasks[task.task_id]
        gpu._load = 0.0
        with pytest.raises(InvariantViolation) as exc:
            check_cluster_conservation(cluster)
        assert exc.value.invariant == "placement-consistency"
        assert exc.value.task_id == task.task_id


class TestSanitizingCluster:
    def test_build_and_verify(self):
        cluster = SanitizingCluster.build(2, 4)
        assert isinstance(cluster, SanitizingCluster)
        job = make_job(seed=5)
        place(cluster, job.tasks[0], 0)
        cluster.verify()  # consistent state passes

    def test_verify_raises_on_leak(self):
        cluster = SanitizingCluster.build(2, 4)
        cluster.server(1)._load = ResourceVector(gpu=0.25)
        with pytest.raises(InvariantViolation) as exc:
            cluster.verify(round_index=7)
        assert exc.value.server_id == 1
        assert exc.value.round_index == 7


class TestQueueConsistency:
    def advance_until_queued(self, engine: SimulationEngine) -> None:
        engine.start()
        while not engine.queue:
            result = engine.advance()
            assert result.events_processed, "workload drained before any task queued"

    def test_consistent_engine_passes(self):
        engine = small_engine()
        self.advance_until_queued(engine)
        check_queue_consistency(engine)

    def test_duplicate_queue_entry(self):
        engine = small_engine()
        self.advance_until_queued(engine)
        # TaskQueue.append itself rejects duplicates, so simulate the
        # corruption behind its back (a stale backing-list entry whose
        # id is live again yields the task twice on iteration).
        engine.queue._items.append(engine.queue[0])
        with pytest.raises(InvariantViolation) as exc:
            check_queue_consistency(engine)
        assert exc.value.invariant == "queue-consistency"
        assert exc.value.task_id == engine.queue[0].task_id

    def test_queued_and_placed_at_once(self):
        engine = small_engine()
        self.advance_until_queued(engine)
        task = engine.queue[0]
        task.server_id = 0
        with pytest.raises(InvariantViolation) as exc:
            check_queue_consistency(engine)
        assert exc.value.invariant == "queue-consistency"
        assert exc.value.task_id == task.task_id

    def test_queued_task_of_dead_job(self):
        engine = small_engine()
        self.advance_until_queued(engine)
        task = engine.queue[0]
        engine.active_jobs.pop(task.job_id)
        with pytest.raises(InvariantViolation) as exc:
            check_queue_consistency(engine)
        assert exc.value.invariant == "queue-consistency"
        assert exc.value.job_id == task.job_id


class TestDequeueOrder:
    def scored_decision(self, order, scores) -> SchedulerDecision:
        decision = SchedulerDecision()
        decision.dequeue_order = list(order)
        decision.dequeue_scores = dict(scores)
        return decision

    def test_empty_order_skipped(self):
        check_dequeue_order(SchedulerDecision())  # FIFO-style: no-op

    def test_valid_order_passes(self):
        decision = self.scored_decision(
            [("j1", "t1"), ("j1", "t2"), ("j2", "t3")],
            {"t1": 5.0, "t2": 3.0, "t3": 4.0},
        )
        check_dequeue_order(decision)

    def test_non_contiguous_job_group(self):
        decision = self.scored_decision(
            [("j1", "t1"), ("j2", "t2"), ("j1", "t3")],
            {"t1": 5.0, "t2": 4.0, "t3": 3.0},
        )
        with pytest.raises(InvariantViolation) as exc:
            check_dequeue_order(decision)
        assert exc.value.invariant == "priority-order"
        assert exc.value.job_id == "j1"

    def test_score_increase_within_group(self):
        decision = self.scored_decision(
            [("j1", "t1"), ("j1", "t2")], {"t1": 1.0, "t2": 2.0}
        )
        with pytest.raises(InvariantViolation) as exc:
            check_dequeue_order(decision)
        assert exc.value.invariant == "priority-order"
        assert exc.value.task_id == "t2"

    def test_group_score_increase(self):
        decision = self.scored_decision(
            [("j1", "t1"), ("j2", "t2")], {"t1": 1.0, "t2": 2.0}
        )
        with pytest.raises(InvariantViolation) as exc:
            check_dequeue_order(decision)
        assert exc.value.invariant == "priority-order"
        assert exc.value.job_id == "j2"

    def test_placement_outside_declared_order(self):
        job = make_job(seed=5)
        task = job.tasks[0]
        decision = self.scored_decision([("jx", "tx")], {"tx": 1.0})
        decision.placements.append(Placement(task, 0, 0))
        with pytest.raises(InvariantViolation) as exc:
            check_dequeue_order(decision)
        assert exc.value.invariant == "priority-order"
        assert exc.value.task_id == task.task_id

    def test_placements_follow_order(self):
        job = make_job(seed=5)
        tasks = job.tasks[:2]
        order = [(t.job_id, t.task_id) for t in tasks]
        scores = {t.task_id: 2.0 - i for i, t in enumerate(tasks)}
        decision = self.scored_decision(order, scores)
        decision.placements.extend(Placement(t, 0, i) for i, t in enumerate(tasks))
        check_dequeue_order(decision)


class TestSnapshotRoundtrip:
    def test_picklable_engine_round_trips(self):
        engine = small_engine()
        engine.start()
        engine.advance()
        assert check_snapshot_roundtrip(engine) is True

    def test_unpicklable_engine_skipped(self):
        engine = small_engine()
        engine.scheduler.hook = lambda: None  # lambdas don't pickle
        assert check_snapshot_roundtrip(engine) is False

    def test_digest_equality_after_pickle(self):
        engine = small_engine()
        engine.start()
        engine.advance()
        clone = pickle.loads(pickle.dumps(engine))
        assert engine_state_digest(clone) == engine_state_digest(engine)


class TestSanitizerDriver:
    def test_engine_run_with_sanitizer_counts_rounds(self):
        engine = small_engine(sanitize=True, scheduler=FirstFit())
        assert isinstance(engine.sanitizer, Sanitizer)
        engine.run()
        assert engine.sanitizer.rounds_checked > 0
        assert engine.sanitizer.violations_raised == 0

    def test_check_round_raises_and_counts_on_leak(self):
        engine = small_engine(sanitize=True)
        engine.start()
        engine.advance()
        engine.cluster.server(2)._load = ResourceVector(gpu=1.5)
        with pytest.raises(InvariantViolation) as exc:
            engine.sanitizer.check_round(engine)
        assert exc.value.server_id == 2
        assert engine.sanitizer.violations_raised == 1

    def test_snapshot_throttle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_SNAPSHOT_EVERY", "4")
        assert Sanitizer().snapshot_every == 4

    def test_env_switch(self, monkeypatch):
        for value, expected in [
            ("1", True),
            ("true", True),
            ("strict", True),
            ("0", False),
            ("", False),
        ]:
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize_from_env() is expected
        monkeypatch.delenv("REPRO_SANITIZE")
        assert sanitize_from_env() is False

    def test_env_switch_builds_engine_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert small_engine(sanitize=None).sanitizer is not None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert small_engine(sanitize=None).sanitizer is None


class TestInvariantViolation:
    def test_carries_culprits_and_message(self):
        violation = InvariantViolation(
            "resource-conservation",
            "leak of +1.0",
            server_id=3,
            gpu_id=1,
            task_id="j1:r0p0",
            round_index=12,
        )
        assert isinstance(violation, AssertionError)
        assert violation.server_id == 3
        text = str(violation)
        assert "resource-conservation" in text
        assert "server=3" in text and "gpu=1" in text and "round=12" in text
