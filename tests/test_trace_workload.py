"""Unit tests for trace records, the synthetic generator and job building."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    GPU_CHOICES,
    CommStructure,
    PartitionStyle,
    SyntheticTraceConfig,
    PhillyLikeTraceGenerator,
    TraceRecord,
    WorkloadConfig,
    build_job,
    build_jobs,
    generate_trace,
    get_model,
    iter_window,
    read_trace,
    scale_job_count,
    split_parallelism,
    write_trace,
)
from tests.conftest import make_record


class TestTraceRecord:
    def test_validate_accepts_good_record(self):
        make_record().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("arrival", -1.0),
            ("gpus", 0),
            ("iterations", 0),
            ("accuracy_quantile", 1.5),
            ("urgency", -1),
        ],
    )
    def test_validate_rejects_bad_fields(self, field, value):
        with pytest.raises(ValueError):
            make_record(**{field: value}).validate()

    def test_csv_roundtrip(self, tmp_path):
        records = generate_trace(25, duration_seconds=3600.0, seed=5)
        path = tmp_path / "trace.csv"
        count = write_trace(records, path)
        assert count == 25
        loaded = read_trace(path)
        assert loaded == records

    def test_read_missing_column_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("job_id,arrival_time\nj0,0\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_iter_window(self):
        records = generate_trace(50, duration_seconds=1000.0, seed=1)
        window = list(iter_window(records, 200.0, 600.0))
        assert all(200.0 <= r.arrival_time < 600.0 for r in window)


class TestSyntheticGenerator:
    def test_deterministic_given_seed(self):
        a = generate_trace(30, seed=7)
        b = generate_trace(30, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        assert generate_trace(30, seed=1) != generate_trace(30, seed=2)

    def test_arrivals_sorted_within_window(self):
        records = generate_trace(100, duration_seconds=5000.0, seed=3)
        arrivals = [r.arrival_time for r in records]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a <= 5000.0 for a in arrivals)

    def test_gpu_counts_from_paper_set(self):
        records = generate_trace(200, seed=4)
        assert {r.gpus_requested for r in records} <= set(GPU_CHOICES)

    def test_small_jobs_dominate(self):
        records = generate_trace(500, seed=5)
        single = sum(1 for r in records if r.gpus_requested == 1)
        big = sum(1 for r in records if r.gpus_requested >= 16)
        assert single > big  # Philly-like skew

    def test_iteration_clamps(self):
        config = SyntheticTraceConfig(
            num_jobs=100, min_iterations=5, max_iterations=50
        )
        records = PhillyLikeTraceGenerator(config, seed=6).generate()
        assert all(5 <= r.max_iterations <= 50 for r in records)

    def test_records_validate(self):
        for record in generate_trace(50, seed=8):
            record.validate()

    def test_diurnal_zero_uniform(self):
        records = generate_trace(
            50, duration_seconds=86400.0, seed=9, diurnal_strength=0.0
        )
        assert len(records) == 50


class TestSplitParallelism:
    def test_svm_pure_data_parallel(self):
        replicas, partitions = split_parallelism("svm", 8)
        assert (replicas, partitions) == (8, 1)

    def test_small_job_model_parallel_only(self):
        assert split_parallelism("alexnet", 2) == (1, 2)

    def test_large_job_mixed(self):
        replicas, partitions = split_parallelism("resnet", 16)
        assert replicas == 2 and partitions == 8

    def test_product_preserved(self):
        for gpus in GPU_CHOICES:
            for model in ("alexnet", "resnet", "svm"):
                r, p = split_parallelism(model, gpus)
                assert r * p == gpus


class TestBuildJob:
    def test_deadline_respects_formula(self):
        cfg = WorkloadConfig()
        record = make_record(iterations=20)
        job = build_job(record, random.Random(3), cfg)
        slack = job.deadline - job.arrival_time
        assert slack >= cfg.deadline_slack_factor * job.estimated_duration - 1e-6
        assert slack >= cfg.deadline_uniform_range_hours[0] * 3600.0

    def test_accuracy_requirement_feasible(self):
        for seed in range(20):
            job = build_job(make_record(), random.Random(seed), WorkloadConfig())
            assert job.accuracy_requirement <= job.accuracy_at(job.max_iterations)

    def test_single_replica_forces_ps(self):
        record = make_record(gpus=2, model="alexnet")
        for seed in range(30):
            job = build_job(record, random.Random(seed), WorkloadConfig())
            assert job.comm_structure is CommStructure.PARAMETER_SERVER

    def test_estimated_duration_positive_scales_with_iterations(self):
        short = build_job(make_record(iterations=5), random.Random(1), WorkloadConfig())
        long = build_job(make_record(iterations=50), random.Random(1), WorkloadConfig())
        assert 0 < short.estimated_duration < long.estimated_duration

    def test_build_jobs_sorted_unique(self):
        records = generate_trace(40, seed=10)
        jobs = build_jobs(records, seed=11)
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)
        assert len({j.job_id for j in jobs}) == 40

    def test_build_jobs_deterministic(self):
        records = generate_trace(10, seed=12)
        a = build_jobs(records, seed=13)
        b = build_jobs(records, seed=13)
        assert [j.deadline for j in a] == [j.deadline for j in b]
        assert [j.accuracy_requirement for j in a] == [
            j.accuracy_requirement for j in b
        ]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_build_job_any_seed(self, seed):
        job = build_job(make_record(), random.Random(seed), WorkloadConfig())
        assert job.tasks
        assert job.deadline > job.arrival_time


class TestScaleJobCount:
    def test_truncates(self):
        records = generate_trace(40, seed=1)
        scaled = scale_job_count(records, 0.5)
        assert len(scaled) == 20

    def test_replicates_with_unique_ids(self):
        records = generate_trace(10, seed=1)
        scaled = scale_job_count(records, 2.5)
        assert len(scaled) == 25
        assert len({r.job_id for r in scaled}) == 25

    def test_identity(self):
        records = generate_trace(10, seed=1)
        assert scale_job_count(records, 1.0) == list(records)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_job_count(generate_trace(5, seed=1), 0.0)

    def test_scaled_sorted(self):
        scaled = scale_job_count(generate_trace(10, seed=2), 3.0)
        arrivals = [r.arrival_time for r in scaled]
        assert arrivals == sorted(arrivals)
