"""End-to-end integration tests across the full stack."""

import pytest

from repro import quick_compare
from repro.baselines import FIFOScheduler, GrapheneScheduler
from repro.cluster import Cluster
from repro.core import make_mlf_h, make_mlf_rl, make_mlfs
from repro.sim import EngineConfig, SimulationSetup, run_comparison, run_simulation
from repro.workload import WorkloadConfig, generate_trace


def setup_for(num_jobs, servers, seed=70, window=3600.0, deadline_hours=(0.5, 6.0)):
    records = generate_trace(num_jobs, duration_seconds=window, seed=seed)
    return SimulationSetup(
        records=records,
        cluster_factory=lambda: Cluster.build(servers, 4),
        workload_seed=seed + 1,
        engine_config=EngineConfig(max_time=7 * 24 * 3600.0),
        workload_config=WorkloadConfig(deadline_uniform_range_hours=deadline_hours),
    )


class TestComparisons:
    def test_same_workload_across_schedulers(self):
        setup = setup_for(10, 4)
        results = run_comparison([make_mlf_h(), FIFOScheduler()], setup)
        assert set(results) == {"MLF-H", "FIFO"}
        for result in results.values():
            assert result.summary()["jobs"] == 10

    def test_factories_accepted(self):
        setup = setup_for(8, 4, seed=71)
        results = run_comparison([make_mlfs, make_mlf_rl], setup)
        assert set(results) == {"MLFS", "MLF-RL"}

    def test_quick_compare_smoke(self):
        results = quick_compare(num_jobs=10, num_servers=4, duration_hours=0.5, seed=72)
        assert len(results) == 10
        assert all(v["jobs"] == 10 for v in results.values())


class TestPaperShapes:
    """Coarse shape checks under contention (tolerant by design)."""

    @pytest.fixture(scope="class")
    def contended(self):
        setup = setup_for(60, 3, seed=73, window=1800.0)
        schedulers = [make_mlfs(), make_mlf_h(), GrapheneScheduler(), FIFOScheduler()]
        return {
            name: result.summary()
            for name, result in run_comparison(schedulers, setup).items()
        }

    def test_mlfs_beats_fifo_on_jct(self, contended):
        assert contended["MLFS"]["avg_jct_s"] < contended["FIFO"]["avg_jct_s"]

    def test_mlfs_bandwidth_below_gang_baselines(self, contended):
        assert contended["MLFS"]["bandwidth_gb"] < contended["Graphene"]["bandwidth_gb"]
        assert contended["MLF-H"]["bandwidth_gb"] < contended["FIFO"]["bandwidth_gb"]

    def test_mlfs_deadline_ratio_at_least_fifo(self, contended):
        assert (
            contended["MLFS"]["deadline_ratio"]
            >= contended["FIFO"]["deadline_ratio"] - 0.05
        )

    def test_every_scheduler_finished_everything(self, contended):
        assert all(v["jobs"] == 60 for v in contended.values())


@pytest.mark.slow
class TestAblations:
    def test_migration_reduces_overload_occurrences(self):
        from repro.core import MLFSConfig

        setup = setup_for(50, 2, seed=74, window=1800.0)
        on = run_simulation(
            make_mlf_h(MLFSConfig(enable_migration=True, enable_load_control=False)),
            setup,
        )
        off = run_simulation(
            make_mlf_h(MLFSConfig(enable_migration=False, enable_load_control=False)),
            setup,
        )
        assert on.metrics.num_migrations > 0
        assert off.metrics.num_migrations == 0
        assert (
            on.metrics.overload_occurrences <= off.metrics.overload_occurrences
        )

    def test_load_control_reduces_jct_under_overload(self):
        setup = setup_for(60, 2, seed=75, window=1800.0)
        with_c = run_simulation(make_mlfs(), setup)
        without_c = run_simulation(make_mlf_rl(), setup)
        assert (
            with_c.summary()["avg_jct_s"] <= without_c.summary()["avg_jct_s"] * 1.05
        )


class TestStragglers:
    def test_straggler_injection_slows_jobs(self):
        records = generate_trace(10, duration_seconds=600.0, seed=76)
        base = SimulationSetup(
            records=records,
            cluster_factory=lambda: Cluster.build(6, 4),
            workload_seed=77,
            engine_config=EngineConfig(),
        )
        clean = run_simulation(make_mlf_h(), base)
        slow_setup = SimulationSetup(
            records=records,
            cluster_factory=lambda: Cluster.build(6, 4),
            workload_seed=77,
            engine_config=EngineConfig(
                straggler_probability=0.5, straggler_slowdown=4.0
            ),
        )
        slowed = run_simulation(make_mlf_h(), slow_setup)
        assert slowed.summary()["avg_jct_s"] > clean.summary()["avg_jct_s"]
