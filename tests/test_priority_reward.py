"""Unit tests for Eq. 2–6 priorities and the Eq. 1/7 objectives."""

import pytest

from repro.core import (
    MLFSConfig,
    ObjectiveValues,
    PriorityCalculator,
    PriorityWeights,
    RewardTracker,
    RewardWeights,
    job_temporal_factor,
    make_calculator,
    objective_values,
    reward,
    tune_reward_weights,
)
from tests.conftest import make_job


def calculator(**config_kwargs):
    return PriorityCalculator(config=MLFSConfig(**config_kwargs))


class TestTemporalFactor:
    def test_first_iteration_is_one(self):
        job = make_job(seed=1)
        assert job_temporal_factor(job) == 1.0

    def test_decreases_with_iterations(self):
        job = make_job(seed=1, iterations=50)
        values = []
        for i in range(0, 20):
            job.iterations_completed = i
            values.append(job_temporal_factor(job))
        assert all(b <= a for a, b in zip(values[1:], values[2:]))
        assert values[-1] < values[1]


class TestBasePriorities:
    def test_ml_priority_scales_with_urgency(self):
        calc = calculator()
        low = make_job(seed=2, urgency=1)
        high = make_job(seed=2, urgency=9)
        t_low = next(t for t in low.tasks if not t.is_parameter_server)
        t_high = next(t for t in high.tasks if not t.is_parameter_server)
        assert calc.base_ml_priority(t_high) > calc.base_ml_priority(t_low)

    def test_ml_priority_ignores_urgency_when_ablated(self):
        calc = calculator(use_urgency=False)
        job = make_job(seed=2, urgency=9)
        task = next(t for t in job.tasks if not t.is_parameter_server)
        job2 = make_job(seed=2, urgency=1)
        task2 = next(t for t in job2.tasks if not t.is_parameter_server)
        assert calc.base_ml_priority(task) == pytest.approx(
            calc.base_ml_priority(task2)
        )

    def test_ml_priority_scales_with_partition_size(self):
        calc = calculator()
        job = make_job(seed=3, model="alexnet", gpus=8)
        workers = [t for t in job.tasks if not t.is_parameter_server]
        big = max(workers, key=lambda t: t.partition_params_m)
        small = min(workers, key=lambda t: t.partition_params_m)
        if big.partition_params_m > small.partition_params_m:
            assert calc.base_ml_priority(big) > calc.base_ml_priority(small)

    def test_computation_priority_rises_with_closer_deadline(self):
        calc = calculator()
        job = make_job(seed=4)
        task = job.tasks[0]
        early = calc.base_computation_priority(task, now=job.arrival_time)
        late = calc.base_computation_priority(task, now=job.deadline - 120.0)
        assert late > early

    def test_computation_priority_rises_with_waiting(self):
        calc = calculator()
        job = make_job(seed=4)
        task = job.tasks[0]
        task.mark_queued(0.0)
        p1 = calc.base_computation_priority(task, now=60.0)
        p2 = calc.base_computation_priority(task, now=7200.0)
        assert p2 > p1

    def test_deadline_term_ablation(self):
        with_dl = calculator(use_deadline=True)
        without_dl = calculator(use_deadline=False)
        job = make_job(seed=4)
        task = job.tasks[0]
        now = job.arrival_time
        assert with_dl.base_computation_priority(
            task, now
        ) > without_dl.base_computation_priority(task, now)

    def test_shorter_remaining_time_higher_priority(self):
        calc = calculator()
        job = make_job(seed=5, iterations=100)
        task = job.tasks[0]
        p_long = calc.base_computation_priority(task, now=job.arrival_time)
        job.iterations_completed = 95
        p_short = calc.base_computation_priority(task, now=job.arrival_time)
        assert p_short > p_long


class TestPropagation:
    def test_upstream_tasks_outrank_downstream(self):
        calc = calculator()
        job = make_job(seed=6, model="alexnet", gpus=4)
        priorities = calc.job_priorities(job, now=job.arrival_time)
        workers = [t for t in job.tasks if not t.is_parameter_server]
        by_partition = {
            t.partition_index: priorities[t.task_id]
            for t in workers
            if t.replica_index == workers[0].replica_index
        }
        indexes = sorted(by_partition)
        if len(indexes) > 1:
            # Heads of sequential chains accumulate their children's
            # priority (Eq. 3), so priority decreases along the chain.
            assert by_partition[indexes[0]] > by_partition[indexes[-1]]

    def test_ps_task_has_highest_priority(self):
        calc = calculator()
        job = make_job(seed=7)
        ps = [t for t in job.tasks if t.is_parameter_server]
        if ps:
            priorities = calc.job_priorities(job, now=job.arrival_time)
            assert priorities[ps[0].task_id] == max(priorities.values())

    def test_gamma_raises_parent_priority(self):
        job = make_job(seed=8, model="alexnet", gpus=4)
        low = PriorityCalculator(
            config=MLFSConfig(priority=PriorityWeights(gamma=0.1))
        )
        high = PriorityCalculator(
            config=MLFSConfig(priority=PriorityWeights(gamma=0.9))
        )
        head = next(
            t
            for t in job.tasks
            if not t.is_parameter_server and t.partition_index == 0
        )
        p_low = low.job_priorities(job, now=0.0)[head.task_id]
        p_high = high.job_priorities(job, now=0.0)[head.task_id]
        assert p_high > p_low

    def test_alpha_blends(self):
        job = make_job(seed=9)
        ml_only = PriorityCalculator(
            config=MLFSConfig(priority=PriorityWeights(alpha=1.0))
        )
        comp_only = PriorityCalculator(
            config=MLFSConfig(priority=PriorityWeights(alpha=0.0))
        )
        blended = PriorityCalculator(
            config=MLFSConfig(priority=PriorityWeights(alpha=0.5))
        )
        task = next(t for t in job.tasks if not t.is_parameter_server)
        now = job.arrival_time
        p_ml = ml_only.job_priorities(job, now)[task.task_id]
        p_comp = comp_only.job_priorities(job, now)[task.task_id]
        p_mix = blended.job_priorities(job, now)[task.task_id]
        assert min(p_ml, p_comp) - 1e-9 <= p_mix <= max(p_ml, p_comp) + 1e-9

    def test_priorities_cover_all_tasks(self):
        calc = calculator()
        jobs = [make_job(seed=s, job_id=f"j{s}") for s in (10, 11, 12)]
        priorities = calc.priorities(jobs, now=0.0)
        expected = {t.task_id for j in jobs for t in j.tasks}
        assert set(priorities) == expected

    def test_forget_clears_cache(self):
        calc = calculator()
        job = make_job(seed=13)
        calc.job_priorities(job, now=0.0)
        assert job.job_id in calc._reverse_topo
        calc.forget(job)
        assert job.job_id not in calc._reverse_topo

    def test_make_calculator_validates(self):
        with pytest.raises(ValueError):
            make_calculator(weights=PriorityWeights(alpha=2.0))
        calc = make_calculator(weights=PriorityWeights(alpha=0.5))
        assert calc.config.priority.alpha == 0.5


class TestObjectives:
    def completed(self, seed, jct, deadline_met=True, accuracy=0.8):
        job = make_job(seed=seed)
        job.completion_time = job.arrival_time + jct
        job.deadline = job.completion_time + (1.0 if deadline_met else -1.0)
        job.accuracy_at_deadline = accuracy
        job.accuracy_requirement = 0.5
        return job

    def test_empty_objectives(self):
        values = objective_values([], 0.0)
        assert values.as_tuple() == (0.0, 0.0, 0.0, 0.0, 0.0)

    def test_objective_values(self):
        jobs = [
            self.completed(1, 3600.0),
            self.completed(2, 7200.0, deadline_met=False, accuracy=0.4),
        ]
        values = objective_values(jobs, bandwidth_mb=2048.0)
        assert values.inverse_avg_jct == pytest.approx(1.0 / 1.5)
        assert values.deadline_ratio == pytest.approx(0.5)
        assert values.inverse_bandwidth == pytest.approx(1.0 / 2.0)
        assert values.accuracy_met_ratio == pytest.approx(0.5)
        assert values.average_accuracy == pytest.approx(0.6)

    def test_reward_weighted_sum(self):
        values = ObjectiveValues(1.0, 1.0, 1.0, 1.0, 1.0)
        weights = RewardWeights()
        assert reward(values, weights) == pytest.approx(sum(weights.as_tuple()))

    def test_reward_tracker_window(self):
        tracker = RewardTracker()
        job = self.completed(3, 100.0)
        tracker.note_completion(job, now=50.0)
        tracker.note_bandwidth(1024.0, now=60.0)
        inside = tracker.reward_between(0.0, 100.0)
        outside = tracker.reward_between(200.0, 300.0)
        assert inside > 0.0
        assert outside == 0.0

    def test_reward_tracker_prune(self):
        tracker = RewardTracker()
        tracker.note_completion(self.completed(4, 100.0), now=10.0)
        tracker.prune(before=20.0)
        assert tracker.reward_between(0.0, 100.0) == 0.0

    def test_tune_reward_weights_improves_or_keeps(self):
        # Objective: prefer beta_jct as large as possible.
        def evaluate(weights: RewardWeights) -> float:
            return weights.beta_jct

        best, score = tune_reward_weights(evaluate, coarse_rounds=5, seed=1)
        assert score >= RewardWeights().beta_jct
